//! The mutable simulation state shared by every pipeline phase.
//!
//! [`SimWorld`] owns the whole network — peers, articles, reputation
//! ledger, learners, RNG — while the *logic* of a time step lives in the
//! [`crate::pipeline`] phases that operate on it. Splitting state from
//! logic is what lets incentive schemes, substrates and experimental
//! phases plug into the step loop without touching the engine: a phase
//! receives `&mut SimWorld` plus the per-step scratch
//! [`crate::pipeline::StepContext`] and is otherwise free.

use crate::active::ActiveSets;
use crate::adversary::{AdversaryRegistry, AdversaryRoster};
use crate::agent::AgentState;
use crate::agent_table::AgentTable;
use crate::config::{ReputationSource, SimulationConfig};
use crate::report::{BehaviorBreakdown, SimulationReport};
use collabsim_gametheory::behavior::BehaviorType;
use collabsim_netsim::article::{ArticleId, ArticleRegistry, EditOutcomeCounts};
use collabsim_netsim::bandwidth::BandwidthAllocator;
use collabsim_netsim::clock::SimClock;
use collabsim_netsim::dht::{Dht, DhtKey};
use collabsim_netsim::peer::{PeerId, PeerRegistry};
use collabsim_netsim::storage::ArticleStore;
use collabsim_netsim::transfer::TransferManager;
use collabsim_reputation::function::LogisticReputation;
use collabsim_reputation::propagation::GlobalReputation;
use collabsim_reputation::service::ServiceDifferentiation;
use collabsim_reputation::sharded::ShardedLedger;
use collabsim_rl::space::StateSpace;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Contribution units corresponding to sharing the full 100-article storage
/// (`S_articles` in the paper's `C_S` formula). Together with the default
/// weights `α_S = 1`, `β_S = 2` this puts a full sharer of both resources
/// at `C_S = 24` — high on the Figure 1 logistic curve but not saturated, so
/// each additional resource class still visibly raises the reputation.
pub const ARTICLE_CONTRIBUTION_UNITS: f64 = 12.0;

/// Contribution units corresponding to sharing the full upload bandwidth
/// (`S_bandwidth` in the paper's `C_S` formula).
pub const BANDWIDTH_CONTRIBUTION_UNITS: f64 = 6.0;

/// Per-peer accumulators filled during the measured evaluation phase.
#[derive(Debug, Clone, Default)]
pub struct PeerAccumulator {
    /// Sum of shared-bandwidth fractions over measured steps.
    pub shared_bandwidth_sum: f64,
    /// Sum of shared-article fractions over measured steps.
    pub shared_articles_sum: f64,
    /// Total bandwidth downloaded over measured steps.
    pub downloaded_sum: f64,
    /// Total utility (reward) over measured steps.
    pub utility_sum: f64,
    /// Constructive edit attempts during measurement.
    pub constructive_edits: u64,
    /// Destructive edit attempts during measurement.
    pub destructive_edits: u64,
    /// Votes cast during measurement.
    pub votes: u64,
    /// Number of measured steps.
    pub steps: u64,
}

/// Struct-of-arrays storage for the per-peer evaluation accumulators.
///
/// The utility phase is the only writer and touches every online peer every
/// measured step; one dense array per field lets it stream eight flat
/// vectors instead of strided [`PeerAccumulator`] structs, and lets its
/// scoped workers take disjoint shards via
/// [`AccumulatorTable::split_mut`]. [`AccumulatorTable::peer`] materialises
/// the per-peer struct view for reporting and tests.
#[derive(Debug, Clone, Default)]
pub struct AccumulatorTable {
    /// Per-peer sums of shared-bandwidth fractions over measured steps.
    pub shared_bandwidth_sum: Vec<f64>,
    /// Per-peer sums of shared-article fractions over measured steps.
    pub shared_articles_sum: Vec<f64>,
    /// Per-peer total bandwidth downloaded over measured steps.
    pub downloaded_sum: Vec<f64>,
    /// Per-peer total utility (reward) over measured steps.
    pub utility_sum: Vec<f64>,
    /// Per-peer constructive edit attempts during measurement.
    pub constructive_edits: Vec<u64>,
    /// Per-peer destructive edit attempts during measurement.
    pub destructive_edits: Vec<u64>,
    /// Per-peer votes cast during measurement.
    pub votes: Vec<u64>,
    /// Per-peer count of measured steps.
    pub steps: Vec<u64>,
}

impl AccumulatorTable {
    /// An all-zero table over `population` peers.
    pub fn new(population: usize) -> Self {
        Self {
            shared_bandwidth_sum: vec![0.0; population],
            shared_articles_sum: vec![0.0; population],
            downloaded_sum: vec![0.0; population],
            utility_sum: vec![0.0; population],
            constructive_edits: vec![0; population],
            destructive_edits: vec![0; population],
            votes: vec![0; population],
            steps: vec![0; population],
        }
    }

    /// Number of peers tracked.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the table tracks no peers.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Zeroes every accumulator in place (no reallocation).
    pub fn reset(&mut self) {
        self.shared_bandwidth_sum.iter_mut().for_each(|v| *v = 0.0);
        self.shared_articles_sum.iter_mut().for_each(|v| *v = 0.0);
        self.downloaded_sum.iter_mut().for_each(|v| *v = 0.0);
        self.utility_sum.iter_mut().for_each(|v| *v = 0.0);
        self.constructive_edits.iter_mut().for_each(|v| *v = 0);
        self.destructive_edits.iter_mut().for_each(|v| *v = 0);
        self.votes.iter_mut().for_each(|v| *v = 0);
        self.steps.iter_mut().for_each(|v| *v = 0);
    }

    /// Materialises the per-peer struct view of one peer's accumulators.
    pub fn peer(&self, p: usize) -> PeerAccumulator {
        PeerAccumulator {
            shared_bandwidth_sum: self.shared_bandwidth_sum[p],
            shared_articles_sum: self.shared_articles_sum[p],
            downloaded_sum: self.downloaded_sum[p],
            utility_sum: self.utility_sum[p],
            constructive_edits: self.constructive_edits[p],
            destructive_edits: self.destructive_edits[p],
            votes: self.votes[p],
            steps: self.steps[p],
        }
    }

    /// Splits the table into disjoint mutable shards along `bounds` (peer
    /// indices, ascending, `[0, …, population]`) for the utility phase's
    /// scoped workers.
    pub fn split_mut(&mut self, bounds: &[usize]) -> Vec<AccumulatorShardMut<'_>> {
        assert!(bounds.len() >= 2, "need at least one range");
        assert_eq!(*bounds.first().unwrap(), 0, "ranges must start at 0");
        assert_eq!(
            *bounds.last().unwrap(),
            self.len(),
            "ranges must cover the population"
        );
        let mut shards = Vec::with_capacity(bounds.len() - 1);
        let mut rest = (
            self.shared_bandwidth_sum.as_mut_slice(),
            self.shared_articles_sum.as_mut_slice(),
            self.downloaded_sum.as_mut_slice(),
            self.utility_sum.as_mut_slice(),
            self.constructive_edits.as_mut_slice(),
            self.destructive_edits.as_mut_slice(),
            self.votes.as_mut_slice(),
            self.steps.as_mut_slice(),
        );
        for window in bounds.windows(2) {
            let (start, end) = (window[0], window[1]);
            let n = end - start;
            let (bw, bw_tail) = rest.0.split_at_mut(n);
            let (ar, ar_tail) = rest.1.split_at_mut(n);
            let (dl, dl_tail) = rest.2.split_at_mut(n);
            let (ut, ut_tail) = rest.3.split_at_mut(n);
            let (ce, ce_tail) = rest.4.split_at_mut(n);
            let (de, de_tail) = rest.5.split_at_mut(n);
            let (vo, vo_tail) = rest.6.split_at_mut(n);
            let (st, st_tail) = rest.7.split_at_mut(n);
            shards.push(AccumulatorShardMut {
                start,
                shared_bandwidth_sum: bw,
                shared_articles_sum: ar,
                downloaded_sum: dl,
                utility_sum: ut,
                constructive_edits: ce,
                destructive_edits: de,
                votes: vo,
                steps: st,
            });
            rest = (
                bw_tail, ar_tail, dl_tail, ut_tail, ce_tail, de_tail, vo_tail, st_tail,
            );
        }
        shards
    }
}

/// A disjoint mutable shard of an [`AccumulatorTable`]; peers are addressed
/// by their absolute index (offset by `start`).
#[derive(Debug)]
pub struct AccumulatorShardMut<'a> {
    /// First absolute peer index the shard covers.
    pub start: usize,
    /// Shard slice of [`AccumulatorTable::shared_bandwidth_sum`].
    pub shared_bandwidth_sum: &'a mut [f64],
    /// Shard slice of [`AccumulatorTable::shared_articles_sum`].
    pub shared_articles_sum: &'a mut [f64],
    /// Shard slice of [`AccumulatorTable::downloaded_sum`].
    pub downloaded_sum: &'a mut [f64],
    /// Shard slice of [`AccumulatorTable::utility_sum`].
    pub utility_sum: &'a mut [f64],
    /// Shard slice of [`AccumulatorTable::constructive_edits`].
    pub constructive_edits: &'a mut [u64],
    /// Shard slice of [`AccumulatorTable::destructive_edits`].
    pub destructive_edits: &'a mut [u64],
    /// Shard slice of [`AccumulatorTable::votes`].
    pub votes: &'a mut [u64],
    /// Shard slice of [`AccumulatorTable::steps`].
    pub steps: &'a mut [u64],
}

/// Sparse pairwise upload totals: `get(u, v)` is the total bandwidth peer
/// `u` has uploaded to peer `v`.
///
/// The dense `Vec<Vec<f64>>` predecessor needed `8 · N²` bytes — 80 GB at
/// the 10⁵-peer tier — while actual upload relations are bounded by the
/// number of transfers, so rows are kept as hash maps keyed by the
/// counterparty. Reads of absent pairs return 0.0, exactly like the dense
/// matrix's untouched cells, and no code path iterates a row, so the map's
/// ordering never influences results — which is also why the rows can use
/// [`PeerKeyHasher`] (a multiplicative hash over the dense `u32` peer id)
/// instead of the DoS-resistant default: the download phase performs one
/// lookup per request and one insert per granted transfer per step.
#[derive(Debug, Clone, Default)]
pub struct UploadMatrix {
    rows: Vec<HashMap<u32, f64, PeerKeyHashBuilder>>,
    /// Reverse index: for each peer, the uploaders with a (once-)recorded
    /// relation *to* it — what lets [`UploadMatrix::clear_peer`] drop a
    /// whitewashed identity's column in O(degree) instead of scanning
    /// every row. May hold stale or duplicate entries after a clear
    /// (removals are idempotent), never misses a live one.
    incoming: Vec<Vec<u32>>,
}

/// `BuildHasher` for peer-id-keyed hash maps on hot paths: Fibonacci
/// multiplicative hashing of the `u32` key. Peer ids are dense,
/// attacker-free simulation indices, so SipHash's collision resistance
/// buys nothing here while costing most of the lookup.
#[derive(Debug, Clone, Copy, Default)]
pub struct PeerKeyHashBuilder;

/// Hasher produced by [`PeerKeyHashBuilder`]; see there.
#[derive(Debug, Clone, Copy, Default)]
pub struct PeerKeyHasher(u64);

impl std::hash::Hasher for PeerKeyHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback (unused by the u32 keys the matrix stores).
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }

    fn write_u32(&mut self, value: u32) {
        let x = self.0 ^ u64::from(value);
        let x = x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.0 = x ^ (x >> 29);
    }
}

impl std::hash::BuildHasher for PeerKeyHashBuilder {
    type Hasher = PeerKeyHasher;

    fn build_hasher(&self) -> PeerKeyHasher {
        PeerKeyHasher(0)
    }
}

impl UploadMatrix {
    /// An all-zero matrix over `peers` peers.
    pub fn new(peers: usize) -> Self {
        Self {
            rows: vec![HashMap::default(); peers],
            incoming: vec![Vec::new(); peers],
        }
    }

    /// Number of peers (rows).
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the matrix tracks no peers.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Total bandwidth `from` has uploaded to `to`.
    pub fn get(&self, from: usize, to: usize) -> f64 {
        self.rows[from].get(&(to as u32)).copied().unwrap_or(0.0)
    }

    /// Adds uploaded bandwidth to the `from → to` total.
    pub fn add(&mut self, from: usize, to: usize, amount: f64) {
        match self.rows[from].entry(to as u32) {
            std::collections::hash_map::Entry::Occupied(mut entry) => {
                *entry.get_mut() += amount;
            }
            std::collections::hash_map::Entry::Vacant(entry) => {
                entry.insert(amount);
                self.incoming[to].push(from as u32);
            }
        }
    }

    /// Number of non-zero upload relations stored.
    pub fn relation_count(&self) -> usize {
        self.rows.iter().map(HashMap::len).sum()
    }

    /// The upload relations as one `(counterparty, total)` list per row,
    /// sorted by counterparty id (checkpoint export: the sorted order makes
    /// the serialization independent of map insertion history).
    pub fn sorted_rows(&self) -> Vec<Vec<(u32, f64)>> {
        self.rows
            .iter()
            .map(|row| {
                let mut entries: Vec<(u32, f64)> = row.iter().map(|(&k, &v)| (k, v)).collect();
                entries.sort_unstable_by_key(|&(k, _)| k);
                entries
            })
            .collect()
    }

    /// Rebuilds a matrix from a [`UploadMatrix::sorted_rows`] export,
    /// including the reverse index. No code path iterates a row, so the
    /// changed insertion order never influences results.
    pub fn from_sorted_rows(rows: Vec<Vec<(u32, f64)>>) -> Self {
        let mut matrix = Self::new(rows.len());
        for (from, row) in rows.iter().enumerate() {
            for &(to, amount) in row {
                matrix.add(from, to as usize, amount);
            }
        }
        matrix
    }

    /// Forgets every relation involving `peer` — uploads by it (its row)
    /// and to it (its column, via the reverse index, so the cost is the
    /// peer's degree rather than the population). A whitewashed identity
    /// has no direct-relation history, so tit-for-tat and the trust graph
    /// must see a stranger.
    pub fn clear_peer(&mut self, peer: usize) {
        self.rows[peer].clear();
        let key = peer as u32;
        let uploaders = std::mem::take(&mut self.incoming[peer]);
        for from in uploaders {
            self.rows[from as usize].remove(&key);
        }
    }
}

/// Running totals of the churn phase's population dynamics, kept on the
/// world so observers and benches can quantify reputation persistence
/// under re-entry without growing [`SimulationReport`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ChurnStats {
    /// Re-entries: departed identities that came back online (the fixed
    /// peer arena models a join as the return of a departed identity, so
    /// its reputation record is still in the ledger).
    pub joins: u64,
    /// Departures (peers going offline).
    pub leaves: u64,
    /// Whitewashes: identities reset in place (the old identity never
    /// returns; a newcomer with `R_min` occupies its slot).
    pub whitewashes: u64,
    /// Sum of sharing reputations observed at the moment of re-entry
    /// (measures how much reputation persisted across the absence).
    pub reentry_reputation_sum: f64,
    /// Sum of sharing reputation *above* `R_min` discarded by whitewashes
    /// (what the adversary paid to shed its record).
    pub whitewash_reputation_shed_sum: f64,
}

impl ChurnStats {
    /// Total churn events recorded.
    pub fn total_events(&self) -> u64 {
        self.joins + self.leaves + self.whitewashes
    }

    /// Mean sharing reputation at re-entry (0 with no re-entries). Values
    /// above `R_min` demonstrate reputation persistence across absences.
    pub fn mean_reentry_reputation(&self) -> f64 {
        if self.joins == 0 {
            0.0
        } else {
            self.reentry_reputation_sum / self.joins as f64
        }
    }

    /// Mean reputation shed per whitewash (0 with no whitewashes).
    pub fn mean_whitewash_shed(&self) -> f64 {
        if self.whitewashes == 0 {
            0.0
        } else {
            self.whitewash_reputation_shed_sum / self.whitewashes as f64
        }
    }
}

/// Running totals of the fault layer's grant accounting and transfer
/// outcomes, kept on the world so the conservation invariant and the
/// fault benches can read them without growing [`SimulationReport`].
///
/// Bandwidth conservation holds by construction:
/// `grants_offered == grants_applied + grants_lost + grants_delayed`
/// (up to floating-point accumulation error) — every allocated grant is
/// consumed by exactly one of the three outcomes. On an ideal network
/// only `grants_offered` and `grants_applied` move, and they are equal.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct NetStats {
    /// Total bandwidth allocated by the grant stage.
    pub grants_offered: f64,
    /// Bandwidth actually delivered to transfers.
    pub grants_applied: f64,
    /// Bandwidth lost to link faults (the transfer retries after backoff).
    pub grants_lost: f64,
    /// Bandwidth discarded while a link's latency window was still open.
    pub grants_delayed: f64,
    /// Transfers failed permanently after exhausting the retry budget.
    pub transfers_failed: u64,
    /// Transfers cancelled by the no-progress timeout.
    pub transfers_timed_out: u64,
    /// Transfers abandoned because their source disconnected (the
    /// downloader re-drew a source instead of stalling).
    pub transfers_rerouted: u64,
}

impl NetStats {
    /// The bandwidth-conservation residual
    /// `offered - (applied + lost + delayed)`; ≈ 0 by construction.
    pub fn conservation_residual(&self) -> f64 {
        self.grants_offered - (self.grants_applied + self.grants_lost + self.grants_delayed)
    }
}

/// The full mutable state of one simulation: every substrate the phases of
/// the step pipeline read and write.
///
/// Fields are public so custom [`crate::pipeline::StepPhase`]
/// implementations outside this crate can participate in the step loop;
/// the engine's own invariants (index-alignment of the per-peer vectors,
/// RNG discipline) are documented per field.
pub struct SimWorld {
    /// The configuration the world was built from.
    pub config: SimulationConfig,
    /// Step counter; ticked once at the top of every step.
    pub clock: SimClock,
    /// Peer registry (shared upload fractions, capacities).
    pub peers: PeerRegistry,
    /// Article registry (edit history, quality).
    pub articles: ArticleRegistry,
    /// Which peer holds/offers which article replica.
    pub store: ArticleStore,
    /// DHT overlay locating article replicas.
    pub dht: Dht,
    /// Dual-reputation ledger (`R_S`, `R_E`) of every peer, sharded by
    /// peer-id range so the sharing/edit-vote phases can apply contribution
    /// deltas from parallel workers.
    pub ledger: ShardedLedger,
    /// Service-differentiation rules of the configured incentive scheme.
    pub service: ServiceDifferentiation,
    /// Bandwidth allocator implementing the scheme's allocation policy.
    pub allocator: BandwidthAllocator,
    /// In-flight and completed transfers.
    pub transfers: TransferManager,
    /// Struct-of-arrays agent state (behaviour kinds, flat Q-blocks, last
    /// choices), index-aligned with `behaviors`.
    pub agents: AgentTable,
    /// Behaviour type per peer.
    pub behaviors: Vec<BehaviorType>,
    /// Incremental active sets: the packed online bitset every hot phase
    /// iterates, plus the static rational-learner set. Maintained by
    /// [`SimWorld::depart_peer`], [`SimWorld::rejoin_peer`] and
    /// [`SimWorld::whitewash_peer`] — custom phases must toggle peer
    /// liveness through those methods, never via
    /// [`PeerRegistry::set_online`] directly, or the sets (and every phase
    /// iterating them) go stale.
    pub active: ActiveSets,
    /// The learner's state space (reputation buckets).
    pub states: StateSpace,
    /// The step RNG. Phases must draw from it in pipeline order only —
    /// reordering draws changes every downstream result.
    pub rng: StdRng,
    /// Total bandwidth each peer has uploaded to each other peer (the
    /// direct-relation history tit-for-tat and the trust graph need).
    pub uploads: UploadMatrix,
    /// In-flight download per peer (transfer id into `transfers`).
    pub active_transfer: Vec<Option<u64>>,
    /// Accepted edits since the peer's last punishment (for restoring
    /// voting rights).
    pub accepted_since_punishment: Vec<u32>,
    /// Step at which each currently offline peer departed (`None` while
    /// online). Feeds the optional
    /// [`reputation_uptime_discount`](crate::config::SimulationConfig::reputation_uptime_discount):
    /// at re-entry the absence length prices the decay. Tracked
    /// unconditionally (it is one store per departure), applied only when
    /// the discount factor is below 1.
    pub offline_since: Vec<Option<u64>>,
    /// Evaluation-phase measurement accumulators (struct-of-arrays).
    pub accumulators: AccumulatorTable,
    /// Whether the measured evaluation phase is active.
    pub measuring: bool,
    /// Steps run since measurement started.
    pub evaluation_steps_run: u64,
    /// Completed-download count at measurement start (baseline).
    pub downloads_completed_in_evaluation: usize,
    /// Edit-outcome counts at measurement start (baseline).
    pub edit_outcome_baseline: EditOutcomeCounts,
    /// Dedicated RNG for the optional reputation-propagation phase, seeded
    /// independently of `rng` so enabling propagation does not perturb the
    /// core dynamics' random stream.
    pub propagation_rng: StdRng,
    /// Dedicated RNG for the churn phase's event sampling, independent of
    /// `rng` for the same reason: a stable churn model draws nothing, and
    /// the phase's presence alone can never perturb the core stream.
    pub churn_rng: StdRng,
    /// Running churn counters (re-entries, departures, whitewashes and the
    /// reputation observed at those boundaries).
    pub churn_stats: ChurnStats,
    /// Latest globally propagated reputation vector, if the propagation
    /// phase has run.
    pub global_reputation: Option<GlobalReputation>,
    /// How many times the propagation phase has executed its backend.
    pub propagation_runs: u64,
    /// The latest propagated reputation mapped onto the `[R_min, 1]`
    /// service scale, refreshed by the propagation phase when
    /// [`ReputationSource::Propagated`] is configured (`None` otherwise, or
    /// before the first propagation round of a phase). This is the vector
    /// [`SimWorld::service_sharing_reputation`] serves.
    pub propagated_service_reputation: Option<Vec<f64>>,
    /// The strategic adversary units configured for this run (empty and
    /// inert unless the configuration lists [`crate::adversary::AdversarySpec`]s).
    pub adversaries: AdversaryRoster,
    /// Dedicated RNG for adversary strategies, independent of `rng` for the
    /// same reason as `churn_rng`: a run without adversaries draws nothing
    /// here and stays bit-identical.
    pub adversary_rng: StdRng,
    /// Dedicated RNG for the network-fault layer (connection-state
    /// lifecycle and link-loss draws), independent of `rng` for the same
    /// reason as `churn_rng`: the ideal link model draws nothing here, so
    /// the fault layer's presence alone can never perturb the core stream.
    pub net_rng: StdRng,
    /// Running fault-layer grant accounting (all zeros under the ideal
    /// model except `grants_offered == grants_applied`).
    pub net_stats: NetStats,
    /// Worker-thread count for the intra-step collect/apply stages,
    /// resolved once at construction (config value, or the automatic
    /// `SCENARIO_THREADS`/hardware resolution when the config says 0) so
    /// the hot phases never touch the process environment.
    intra_step_threads: usize,
    /// Reused candidate buffer of
    /// [`SimWorld::pick_article_to_download`]: the filtered article list
    /// is rebuilt in place (same contents, same order, same RNG draws as
    /// a freshly collected vector).
    article_scratch: Vec<ArticleId>,
}

impl SimWorld {
    /// Builds the initial network state from a configuration, resolving
    /// adversary specs against the standard
    /// [`AdversaryRegistry`].
    ///
    /// RNG draw order (behaviour shuffle, then article seeding) is part of
    /// the determinism contract pinned by the golden-report test.
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration or an adversary strategy the
    /// standard registry does not know (use
    /// [`SimWorld::with_adversary_registry`] for custom strategies and a
    /// typed error).
    pub fn new(config: SimulationConfig) -> Self {
        match Self::with_adversary_registry(config, &AdversaryRegistry::standard()) {
            Ok(world) => world,
            Err(error) => panic!("{error}"),
        }
    }

    /// [`SimWorld::new`] with adversary specs resolved against a
    /// caller-supplied registry (which may contain custom strategies),
    /// returning a typed error instead of panicking.
    pub fn with_adversary_registry(
        config: SimulationConfig,
        adversary_registry: &AdversaryRegistry,
    ) -> Result<Self, crate::spec::SpecError> {
        config.check()?;
        let mut rng = StdRng::seed_from_u64(config.seed);
        let population = config.population;

        let peers = PeerRegistry::with_population(population);
        let states = StateSpace::new(config.reputation_states);

        // Behaviour assignment: deterministic largest-remainder rounding of
        // the configured mix, then a seeded shuffle so types are not
        // clustered by index.
        let mut behaviors = config.mix.assign(population);
        behaviors.shuffle(&mut rng);

        let agents = AgentTable::new(&behaviors, states, config.learning);
        let active = ActiveSets::new(&behaviors);

        let reputation_fn = Arc::new(LogisticReputation::new(
            (1.0 - config.min_reputation) / config.min_reputation,
            config.reputation_beta,
        ));
        let ledger = ShardedLedger::new(
            population,
            config.contribution,
            reputation_fn.clone(),
            reputation_fn,
            config.ledger_shards,
        );
        let service = ServiceDifferentiation::new(config.service, config.min_reputation);
        let allocator = BandwidthAllocator::new(config.incentive.allocation_policy());

        // Seed the article base: initial articles created by random peers,
        // replicated onto the DHT-closest peers.
        let mut articles = ArticleRegistry::new();
        let mut store = ArticleStore::new();
        let mut dht = Dht::new(3);
        dht.join_many((0..population).map(|p| PeerId(p as u32)));
        for _ in 0..config.initial_articles {
            let creator = PeerId(rng.gen_range(0..population as u32));
            let id = articles.create_article(creator, 0);
            store.add_replica(creator, id);
            let key = DhtKey::for_article(id.0);
            for holder in dht.store(key) {
                store.add_replica(holder, id);
            }
        }

        let propagation_rng = StdRng::seed_from_u64(config.seed ^ 0x9E37_79B9_7F4A_7C15);
        let churn_rng = StdRng::seed_from_u64(config.seed ^ 0x5851_F42D_4C95_7F2D);
        let adversary_rng = StdRng::seed_from_u64(config.seed ^ 0x3C6E_F372_FE94_F82A);
        let net_rng = StdRng::seed_from_u64(config.seed ^ 0xD1B5_4A32_D192_ED03);
        let adversaries = adversary_registry.build_roster(&config)?;

        let intra_step_threads = match config.intra_step_threads {
            0 => crate::threads::auto_intra_step_threads(population),
            n => n,
        };

        Ok(Self {
            clock: SimClock::new(),
            peers,
            articles,
            store,
            dht,
            ledger,
            service,
            allocator,
            transfers: TransferManager::new(),
            agents,
            behaviors,
            active,
            states,
            uploads: UploadMatrix::new(population),
            active_transfer: vec![None; population],
            accepted_since_punishment: vec![0; population],
            offline_since: vec![None; population],
            accumulators: AccumulatorTable::new(population),
            measuring: false,
            evaluation_steps_run: 0,
            downloads_completed_in_evaluation: 0,
            edit_outcome_baseline: Default::default(),
            propagation_rng,
            churn_rng,
            churn_stats: ChurnStats::default(),
            global_reputation: None,
            propagation_runs: 0,
            propagated_service_reputation: None,
            adversaries,
            adversary_rng,
            net_rng,
            net_stats: NetStats::default(),
            intra_step_threads,
            article_scratch: Vec::new(),
            rng,
            config,
        })
    }

    /// Number of peers.
    pub fn population(&self) -> usize {
        self.config.population
    }

    /// The worker-thread count the intra-step collect/apply stages use:
    /// the configured value, or the automatic resolution of
    /// [`crate::threads::auto_intra_step_threads`] (resolved once at
    /// construction). Never affects results, only wall-clock time.
    pub fn intra_step_threads(&self) -> usize {
        self.intra_step_threads
    }

    /// The sharing reputation that feeds service decisions (selection
    /// state, bandwidth allocation, edit gating, punishment recovery) for
    /// `peer`: the ledger's globally visible value under
    /// [`ReputationSource::Ledger`], the propagation backend's latest
    /// mapped output under [`ReputationSource::Propagated`] (falling back
    /// to the ledger until the first propagation round of a phase).
    #[inline]
    pub fn service_sharing_reputation(&self, peer: usize) -> f64 {
        match &self.propagated_service_reputation {
            Some(values) => values[peer],
            None => self.ledger.sharing_reputation(peer),
        }
    }

    /// Refreshes the propagated service-reputation cache from the latest
    /// backend output: values are mapped onto the `[R_min, 1]` reputation
    /// scale by dividing through the vector maximum (backends produce
    /// probability-like or flow-bound vectors whose absolute scale is
    /// meaningless to the threshold-based service rules). Called by the
    /// propagation phase after each round; a no-op under
    /// [`ReputationSource::Ledger`].
    pub fn refresh_service_reputation(&mut self) {
        if self.config.reputation_source != ReputationSource::Propagated {
            return;
        }
        let Some(global) = &self.global_reputation else {
            return;
        };
        let r_min = self.config.min_reputation;
        let max = global.values.iter().cloned().fold(0.0f64, f64::max);
        let target = self
            .propagated_service_reputation
            .get_or_insert_with(Vec::new);
        target.clear();
        if max > 0.0 {
            target.extend(
                global
                    .values
                    .iter()
                    .map(|&v| r_min + (1.0 - r_min) * (v / max)),
            );
        } else {
            target.resize(global.values.len(), r_min);
        }
    }

    /// The agent's current state: its service-visible sharing-reputation
    /// bucket (the ledger value, or the propagated estimate under
    /// [`ReputationSource::Propagated`]).
    pub fn agent_state(&self, peer: usize) -> AgentState {
        AgentState::from_reputation(
            self.service_sharing_reputation(peer),
            self.config.min_reputation,
            self.states,
        )
    }

    /// Picks the article a downloader will fetch from a source: preferably
    /// one offered by the source that the downloader does not yet hold,
    /// otherwise any article offered by the source, otherwise any article.
    pub fn pick_article_to_download(&mut self, downloader: PeerId, source: PeerId) -> ArticleId {
        let offered = self.store.offered_by(source);
        self.article_scratch.clear();
        for &a in offered {
            if !self.store.holds(downloader, a) {
                self.article_scratch.push(a);
            }
        }
        if let Some(&a) = self.article_scratch.choose(&mut self.rng) {
            return a;
        }
        if let Some(&a) = offered.choose(&mut self.rng) {
            return a;
        }
        // The source offers bandwidth but no specific article replica; fall
        // back to a random article of the registry (size-1 download of a
        // cached copy).
        let count = self.articles.article_count() as u32;
        if count == 0 {
            ArticleId(0)
        } else {
            ArticleId(self.rng.gen_range(0..count))
        }
    }

    /// Takes a peer offline (a churn departure): its in-flight download is
    /// cancelled and its slot released, its article offers are withdrawn,
    /// and it is marked offline. Transfers it was *serving* are abandoned
    /// by their downloaders on the next step's collect stage, exactly like
    /// a source that stopped sharing. The ledger record is left untouched —
    /// reputation persists across the absence, which is what the re-entry
    /// experiments measure.
    pub fn depart_peer(&mut self, peer: PeerId, now: u64) {
        let p = peer.index();
        if let Some(tid) = self.active_transfer[p].take() {
            if self.transfers.transfer(tid).status
                == collabsim_netsim::transfer::TransferStatus::InProgress
            {
                self.transfers.cancel(tid, now);
            }
            self.transfers.release(tid);
        }
        self.store.set_offered_count(peer, 0);
        // Withdraw the registry offers immediately: the sharing phase skips
        // offline peers entirely (it used to zero these through the idle
        // action one phase later; every reader of the share fields gates on
        // `online`, so zeroing at the departure boundary is equivalent and
        // lets the phase iterate the online bitset only).
        let record = self.peers.peer_mut(peer);
        record.set_shared_upload_fraction(0.0);
        record.set_shared_articles(0);
        record.online = false;
        self.active.set_offline(p);
        self.offline_since[p] = Some(now);
        self.churn_stats.leaves += 1;
    }

    /// Brings a departed identity back online (a churn re-entry). The
    /// fixed peer arena models a *join* as the return of a departed
    /// identity, so the ledger record — and with it the peer's reputation —
    /// survives the absence; the observed sharing reputation at this moment
    /// is accumulated in [`ChurnStats::reentry_reputation_sum`].
    pub fn rejoin_peer(&mut self, peer: PeerId, now: u64) {
        let p = peer.index();
        // Uptime discount: an absence of `d` steps scales the sharing
        // contribution by `factor^d` before the identity re-enters service
        // differentiation. The guard keeps the default factor of 1.0 a
        // provable no-op (no ledger access, bit-identical runs).
        let factor = self.config.reputation_uptime_discount;
        if let Some(since) = self.offline_since[p].take() {
            if factor < 1.0 {
                let absence = now.saturating_sub(since);
                if absence > 0 {
                    self.ledger.scale_sharing_contribution(
                        p,
                        factor.powi(absence.min(i32::MAX as u64) as i32),
                    );
                }
            }
        }
        self.churn_stats.joins += 1;
        self.churn_stats.reentry_reputation_sum += self.ledger.sharing_reputation(p);
        let record = self.peers.peer_mut(peer);
        record.online = true;
        record.joined_at = now;
        self.active.set_online(p);
    }

    /// Whitewashes a peer: it leaves and instantly rejoins under a fresh
    /// identity occupying the same arena slot. Observationally the old
    /// identity never returns and a newcomer appears: the ledger record is
    /// reset to the newcomer state (reputation back to `R_min`, punishment
    /// counters cleared, rights restored) and the upload-relation history
    /// is forgotten in both directions. The agent keeps its Q-matrix — the
    /// human behind the identity is the same learner.
    ///
    /// Returns the sharing reputation above `R_min` the identity shed (what
    /// the whitewash cost), so callers tracking per-strategy attack costs
    /// share this accounting instead of recomputing it.
    pub fn whitewash_peer(&mut self, peer: PeerId, now: u64) -> f64 {
        let p = peer.index();
        let shed =
            (self.ledger.sharing_reputation(p) - self.ledger.min_sharing_reputation()).max(0.0);
        self.churn_stats.whitewashes += 1;
        self.churn_stats.whitewash_reputation_shed_sum += shed;
        // The old identity's in-flight download dies with it (exactly as
        // on departure) — a fresh identity must not inherit partial
        // transfer progress, or whitewashing would be strictly cheaper
        // than leave + rejoin.
        if let Some(tid) = self.active_transfer[p].take() {
            if self.transfers.transfer(tid).status
                == collabsim_netsim::transfer::TransferStatus::InProgress
            {
                self.transfers.cancel(tid, now);
            }
            self.transfers.release(tid);
        }
        self.ledger.reset_peer_identity(p);
        self.uploads.clear_peer(p);
        self.accepted_since_punishment[p] = 0;
        // A fresh identity has no absence to discount.
        self.offline_since[p] = None;
        let record = self.peers.peer_mut(peer);
        record.online = true;
        record.joined_at = now;
        self.active.set_online(p);
        shed
    }

    /// The phase switch: reputation values are reset, Q-matrices are kept.
    /// The propagated service-reputation cache is dropped with them —
    /// evaluation starts from the newcomer state until the first
    /// propagation round of the measured phase.
    pub fn reset_for_evaluation(&mut self) {
        self.propagated_service_reputation = None;
        self.ledger.reset_all_contributions();
        self.accumulators.reset();
        self.edit_outcome_baseline = self.articles.edit_outcome_counts();
        let completed_before = self.transfers.completed_count();
        self.downloads_completed_in_evaluation = completed_before;
        self.measuring = true;
        self.evaluation_steps_run = 0;
    }

    /// Builds the report from the evaluation-phase accumulators.
    pub fn build_report(&self) -> SimulationReport {
        let population = self.config.population;
        let mut overall_bandwidth = 0.0;
        let mut overall_articles = 0.0;
        let mut total_steps = 0u64;

        let mut by_behavior: BTreeMap<String, BehaviorBreakdown> = BTreeMap::new();
        for behavior in BehaviorType::ALL {
            let peers_of_type: Vec<usize> = (0..population)
                .filter(|&p| self.behaviors[p] == behavior)
                .collect();
            if peers_of_type.is_empty() {
                continue;
            }
            let mut breakdown = BehaviorBreakdown {
                peers: peers_of_type.len(),
                ..Default::default()
            };
            let mut steps = 0u64;
            for &p in &peers_of_type {
                let acc = self.accumulators.peer(p);
                breakdown.shared_bandwidth += acc.shared_bandwidth_sum;
                breakdown.shared_articles += acc.shared_articles_sum;
                breakdown.downloaded += acc.downloaded_sum;
                breakdown.mean_utility += acc.utility_sum;
                breakdown.constructive_edits += acc.constructive_edits;
                breakdown.destructive_edits += acc.destructive_edits;
                breakdown.votes += acc.votes;
                breakdown.final_sharing_reputation += self.ledger.sharing_reputation(p);
                breakdown.final_editing_reputation += self.ledger.editing_reputation(p);
                steps += acc.steps;
                overall_bandwidth += acc.shared_bandwidth_sum;
                overall_articles += acc.shared_articles_sum;
                total_steps += acc.steps;
            }
            if steps > 0 {
                breakdown.shared_bandwidth /= steps as f64;
                breakdown.shared_articles /= steps as f64;
                breakdown.downloaded /= steps as f64;
                breakdown.mean_utility /= steps as f64;
            }
            breakdown.final_sharing_reputation /= peers_of_type.len() as f64;
            breakdown.final_editing_reputation /= peers_of_type.len() as f64;
            by_behavior.insert(behavior.label().to_string(), breakdown);
        }

        let (shared_bandwidth, shared_articles) = if total_steps > 0 {
            (
                overall_bandwidth / total_steps as f64,
                overall_articles / total_steps as f64,
            )
        } else {
            (0.0, 0.0)
        };

        // Edit outcomes accumulated during the evaluation phase only.
        let now_counts = self.articles.edit_outcome_counts();
        let base = self.edit_outcome_baseline;
        let edit_outcomes = EditOutcomeCounts {
            accepted_constructive: now_counts.accepted_constructive - base.accepted_constructive,
            accepted_destructive: now_counts.accepted_destructive - base.accepted_destructive,
            declined_constructive: now_counts.declined_constructive - base.declined_constructive,
            declined_destructive: now_counts.declined_destructive - base.declined_destructive,
            pending: now_counts.pending,
        };

        SimulationReport {
            shared_bandwidth,
            shared_articles,
            by_behavior,
            edit_outcomes,
            mean_article_quality: self.articles.mean_quality(),
            completed_downloads: self.transfers.completed_count()
                - self.downloads_completed_in_evaluation,
            evaluation_steps: self.evaluation_steps_run,
            seed: self.config.seed,
        }
    }
}
