//! The hand-rolled binary codec behind the snapshot format.
//!
//! The serde façade of this workspace is a no-op offline stub, so the
//! snapshot format writes its own bytes: little-endian fixed-width
//! integers, `f64` via [`f64::to_bits`] (bit-exact round-trip, NaN
//! payloads included), length-prefixed sequences and strings, and
//! one-byte `Option` tags. Every read is bounds-checked and reports a
//! typed [`SnapshotError::Corrupt`] instead of panicking, so a truncated
//! or bit-flipped snapshot surfaces as a recoverable error at every
//! layer above.

use super::SnapshotError;

/// Append-only byte sink for encoding a snapshot payload.
#[derive(Debug, Default)]
pub(crate) struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    pub(crate) fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub(crate) fn u8(&mut self, value: u8) {
        self.buf.push(value);
    }

    pub(crate) fn u32(&mut self, value: u32) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    pub(crate) fn u64(&mut self, value: u64) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    pub(crate) fn usize(&mut self, value: usize) {
        self.u64(value as u64);
    }

    pub(crate) fn bool(&mut self, value: bool) {
        self.u8(u8::from(value));
    }

    pub(crate) fn f64(&mut self, value: f64) {
        self.u64(value.to_bits());
    }

    pub(crate) fn str(&mut self, value: &str) {
        self.usize(value.len());
        self.buf.extend_from_slice(value.as_bytes());
    }

    pub(crate) fn opt_u64(&mut self, value: Option<u64>) {
        match value {
            Some(v) => {
                self.u8(1);
                self.u64(v);
            }
            None => self.u8(0),
        }
    }
}

/// Bounds-checked cursor over an encoded snapshot payload.
#[derive(Debug)]
pub(crate) struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn truncated() -> SnapshotError {
    SnapshotError::Corrupt("payload truncated".to_string())
}

impl<'a> Reader<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self.pos.checked_add(n).ok_or_else(truncated)?;
        if end > self.bytes.len() {
            return Err(truncated());
        }
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// A sequence length: a `u64` additionally sanity-bounded against the
    /// remaining payload so corrupt lengths fail fast instead of asking
    /// the allocator for exabytes.
    pub(crate) fn len(&mut self) -> Result<usize, SnapshotError> {
        let value = self.u64()?;
        let remaining = (self.bytes.len() - self.pos) as u64;
        if value > remaining {
            return Err(SnapshotError::Corrupt(format!(
                "sequence length {value} exceeds the {remaining} remaining payload bytes"
            )));
        }
        Ok(value as usize)
    }

    pub(crate) fn bool(&mut self) -> Result<bool, SnapshotError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(SnapshotError::Corrupt(format!("invalid bool tag {other}"))),
        }
    }

    pub(crate) fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub(crate) fn str(&mut self) -> Result<String, SnapshotError> {
        let len = self.len()?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| SnapshotError::Corrupt("invalid UTF-8 in string".to_string()))
    }

    pub(crate) fn opt_u64(&mut self) -> Result<Option<u64>, SnapshotError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u64()?)),
            other => Err(SnapshotError::Corrupt(format!(
                "invalid option tag {other}"
            ))),
        }
    }

    /// Asserts the payload was consumed exactly.
    pub(crate) fn finish(self) -> Result<(), SnapshotError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(SnapshotError::Corrupt(format!(
                "{} trailing bytes after the payload",
                self.bytes.len() - self.pos
            )))
        }
    }
}

/// The FNV-1a 64-bit hash used as the snapshot content hash: dependency-free,
/// stable across platforms, and sensitive to every byte — exactly what the
/// corruption check needs (it guards against accidents, not adversaries).
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = Writer::new();
        w.u8(7);
        w.u32(123_456_789);
        w.u64(u64::MAX - 3);
        w.bool(true);
        w.bool(false);
        w.f64(-0.0);
        w.f64(f64::NAN);
        w.str("héllo");
        w.opt_u64(None);
        w.opt_u64(Some(42));
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 123_456_789);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert!(r.bool().unwrap());
        assert!(!r.bool().unwrap());
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.f64().unwrap().is_nan());
        assert_eq!(r.str().unwrap(), "héllo");
        assert_eq!(r.opt_u64().unwrap(), None);
        assert_eq!(r.opt_u64().unwrap(), Some(42));
        r.finish().unwrap();
    }

    #[test]
    fn truncated_reads_are_typed_errors() {
        let mut w = Writer::new();
        w.u64(1);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes[..5]);
        assert!(matches!(r.u64(), Err(SnapshotError::Corrupt(_))));
    }

    #[test]
    fn oversized_sequence_length_is_rejected() {
        let mut w = Writer::new();
        w.u64(u64::MAX);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(r.len(), Err(SnapshotError::Corrupt(_))));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut w = Writer::new();
        w.u8(1);
        w.u8(2);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        r.u8().unwrap();
        assert!(matches!(r.finish(), Err(SnapshotError::Corrupt(_))));
    }

    #[test]
    fn fnv_hash_is_stable_and_byte_sensitive() {
        assert_eq!(fnv1a64(b""), 0xCBF2_9CE4_8422_2325);
        assert_ne!(fnv1a64(b"abc"), fnv1a64(b"abd"));
    }
}
