//! Pluggable snapshot storage: the [`RunStore`] trait and its two
//! built-in backends.
//!
//! A store maps content-derived keys (`step<step>-<hash>`, so
//! lexicographic order is chronological order) to encoded snapshots.
//! [`MemStore`] keeps the encoded bytes in memory — the warm-start grid
//! coordinator forks strategy cells from it without touching the disk.
//! [`DirStore`] persists one `<key>.snap` file per snapshot in a
//! directory, written atomically (temp file + rename) so a crash mid-write
//! never leaves a half-snapshot under a valid name; every read re-verifies
//! the frame's magic, version and content hash.

use super::{Snapshot, SnapshotError};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Extension of on-disk snapshot files.
pub const SNAPSHOT_EXTENSION: &str = "snap";

/// A keyed store of encoded snapshots.
///
/// Implementations must round-trip snapshots bitwise: `get(put(s))` encodes
/// to exactly the bytes `s` encodes to (pinned by the `spec_fuzz` property
/// tests for both built-in backends).
pub trait RunStore {
    /// Persists a snapshot and returns its content-derived key. Storing
    /// the same snapshot twice is idempotent (same key, same bytes).
    fn put(&mut self, snapshot: &Snapshot) -> Result<String, SnapshotError>;

    /// Loads and decodes the snapshot stored under `key`, verifying
    /// integrity.
    fn get(&self, key: &str) -> Result<Snapshot, SnapshotError>;

    /// Every stored key, sorted ascending (chronological, thanks to the
    /// `step<step>-` prefix).
    fn keys(&self) -> Result<Vec<String>, SnapshotError>;

    /// The latest stored key, if any.
    fn latest(&self) -> Result<Option<String>, SnapshotError> {
        Ok(self.keys()?.pop())
    }
}

/// In-memory [`RunStore`]: encoded snapshots in a sorted map.
#[derive(Debug, Clone, Default)]
pub struct MemStore {
    entries: BTreeMap<String, Vec<u8>>,
}

impl MemStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of stored snapshots.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store holds no snapshots.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl RunStore for MemStore {
    fn put(&mut self, snapshot: &Snapshot) -> Result<String, SnapshotError> {
        let bytes = snapshot.encode();
        let key = snapshot.key();
        self.entries.insert(key.clone(), bytes);
        Ok(key)
    }

    fn get(&self, key: &str) -> Result<Snapshot, SnapshotError> {
        let bytes = self
            .entries
            .get(key)
            .ok_or_else(|| SnapshotError::NotFound(key.to_string()))?;
        Snapshot::decode(bytes)
    }

    fn keys(&self) -> Result<Vec<String>, SnapshotError> {
        Ok(self.entries.keys().cloned().collect())
    }
}

/// On-disk [`RunStore`]: one atomically written, integrity-checked
/// `<key>.snap` file per snapshot in a flat directory.
#[derive(Debug, Clone)]
pub struct DirStore {
    dir: PathBuf,
}

fn io_err(context: &str, path: &Path, error: std::io::Error) -> SnapshotError {
    SnapshotError::Io(format!("{context} {}: {error}", path.display()))
}

impl DirStore {
    /// Opens (creating if necessary) a snapshot directory.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, SnapshotError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| io_err("creating", &dir, e))?;
        Ok(Self { dir })
    }

    /// The directory the store persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_of(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{key}.{SNAPSHOT_EXTENSION}"))
    }
}

impl RunStore for DirStore {
    fn put(&mut self, snapshot: &Snapshot) -> Result<String, SnapshotError> {
        let bytes = snapshot.encode();
        let key = snapshot.key();
        let path = self.path_of(&key);
        let tmp = self.dir.join(format!(".{key}.tmp"));
        std::fs::write(&tmp, &bytes).map_err(|e| io_err("writing", &tmp, e))?;
        std::fs::rename(&tmp, &path).map_err(|e| io_err("renaming into", &path, e))?;
        Ok(key)
    }

    fn get(&self, key: &str) -> Result<Snapshot, SnapshotError> {
        let path = self.path_of(key);
        let bytes = match std::fs::read(&path) {
            Ok(bytes) => bytes,
            Err(error) if error.kind() == std::io::ErrorKind::NotFound => {
                return Err(SnapshotError::NotFound(key.to_string()))
            }
            Err(error) => return Err(io_err("reading", &path, error)),
        };
        Snapshot::decode(&bytes)
    }

    fn keys(&self) -> Result<Vec<String>, SnapshotError> {
        let mut keys = Vec::new();
        let entries = std::fs::read_dir(&self.dir).map_err(|e| io_err("listing", &self.dir, e))?;
        for entry in entries {
            let entry = entry.map_err(|e| io_err("listing", &self.dir, e))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(key) = name.strip_suffix(&format!(".{SNAPSHOT_EXTENSION}")) {
                if !key.starts_with('.') {
                    keys.push(key.to_string());
                }
            }
        }
        keys.sort();
        Ok(keys)
    }
}

/// Reads and decodes a snapshot from an arbitrary file path (the
/// `collabsim resume <snapshot>` entry point, which takes a file rather
/// than a store key).
pub fn read_snapshot_file(path: impl AsRef<Path>) -> Result<Snapshot, SnapshotError> {
    let path = path.as_ref();
    let bytes = match std::fs::read(path) {
        Ok(bytes) => bytes,
        Err(error) if error.kind() == std::io::ErrorKind::NotFound => {
            return Err(SnapshotError::NotFound(path.display().to_string()))
        }
        Err(error) => return Err(io_err("reading", path, error)),
    };
    Snapshot::decode(&bytes)
}

/// Atomically writes a snapshot to an arbitrary file path (temp file +
/// rename in the destination directory).
pub fn write_snapshot_file(
    path: impl AsRef<Path>,
    snapshot: &Snapshot,
) -> Result<(), SnapshotError> {
    let path = path.as_ref();
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    if let Some(dir) = dir {
        std::fs::create_dir_all(dir).map_err(|e| io_err("creating", dir, e))?;
    }
    let file_name = path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| SnapshotError::Io(format!("invalid path {}", path.display())))?;
    let tmp = match dir {
        Some(dir) => dir.join(format!(".{file_name}.tmp")),
        None => PathBuf::from(format!(".{file_name}.tmp")),
    };
    std::fs::write(&tmp, snapshot.encode()).map_err(|e| io_err("writing", &tmp, e))?;
    std::fs::rename(&tmp, path).map_err(|e| io_err("renaming into", path, e))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{PhaseConfig, SimulationConfig};
    use crate::engine::Simulation;
    use crate::spec::ScenarioSpec;

    fn snapshot_at(steps: u64) -> Snapshot {
        let config = SimulationConfig {
            population: 12,
            initial_articles: 5,
            phases: PhaseConfig {
                training_steps: 40,
                evaluation_steps: 20,
                ..Default::default()
            },
            ..Default::default()
        };
        let spec = ScenarioSpec::from_config(config).unwrap();
        let mut sim = Simulation::from_spec(&spec).unwrap();
        for _ in 0..steps {
            sim.step(10_000.0);
        }
        sim.snapshot(&spec)
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("collabsim-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn mem_store_round_trips_and_sorts_keys() {
        let mut store = MemStore::new();
        let early = snapshot_at(3);
        let late = snapshot_at(11);
        let late_key = store.put(&late).unwrap();
        let early_key = store.put(&early).unwrap();
        assert_eq!(
            store.keys().unwrap(),
            vec![early_key.clone(), late_key.clone()]
        );
        assert_eq!(store.latest().unwrap(), Some(late_key.clone()));
        assert_eq!(store.get(&early_key).unwrap().encode(), early.encode());
        assert_eq!(store.get(&late_key).unwrap().encode(), late.encode());
        assert!(matches!(
            store.get("step0000000000-0000000000000000"),
            Err(SnapshotError::NotFound(_))
        ));
    }

    #[test]
    fn dir_store_round_trips_and_persists() {
        let dir = temp_dir("roundtrip");
        let mut store = DirStore::open(&dir).unwrap();
        let snapshot = snapshot_at(7);
        let key = store.put(&snapshot).unwrap();
        // A second open sees the same contents (persistence).
        let reopened = DirStore::open(&dir).unwrap();
        assert_eq!(reopened.keys().unwrap(), vec![key.clone()]);
        assert_eq!(reopened.get(&key).unwrap().encode(), snapshot.encode());
        assert!(matches!(
            reopened.get("stepmissing-key"),
            Err(SnapshotError::NotFound(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn dir_store_detects_on_disk_corruption() {
        let dir = temp_dir("corrupt");
        let mut store = DirStore::open(&dir).unwrap();
        let snapshot = snapshot_at(5);
        let key = store.put(&snapshot).unwrap();
        let path = dir.join(format!("{key}.{SNAPSHOT_EXTENSION}"));
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(store.get(&key), Err(SnapshotError::Corrupt(_))));
        // Truncation is detected too.
        std::fs::write(&path, &bytes[..bytes.len() / 3]).unwrap();
        assert!(matches!(store.get(&key), Err(SnapshotError::Corrupt(_))));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_file_helpers_round_trip() {
        let dir = temp_dir("file");
        let path = dir.join("nested").join("checkpoint.snap");
        let snapshot = snapshot_at(9);
        write_snapshot_file(&path, &snapshot).unwrap();
        let read = read_snapshot_file(&path).unwrap();
        assert_eq!(read.encode(), snapshot.encode());
        assert!(matches!(
            read_snapshot_file(dir.join("absent.snap")),
            Err(SnapshotError::NotFound(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
