//! Checkpoint/resume: versioned, exact-round-trip snapshots of a running
//! simulation, behind a pluggable [`RunStore`].
//!
//! A [`Snapshot`] captures *everything* a [`SimWorld`] owns at a step
//! boundary — every peer, article, edit, transfer slot, ledger record,
//! Q-value, accumulator and all five named RNG streams — plus the
//! originating [`ScenarioSpec`] as its exact text form. Restoring builds a
//! fresh world from the embedded spec (which reconstructs all the derived
//! machinery: pipeline, service rules, thread plan) and then overwrites the
//! mutable state byte for byte, so a resumed run continues the exact
//! trajectory of the run that was checkpointed: the golden determinism
//! tests pin `full run ≡ half run + snapshot + restore + half run` bit for
//! bit.
//!
//! The wire format is a hand-rolled little-endian binary layout (the
//! workspace's serde is a no-op offline stub) framed as
//!
//! ```text
//! magic "COLLBSNP" | version u16 | payload length u64 | payload | FNV-1a64(payload)
//! ```
//!
//! so every consumer detects truncation, bit rot and foreign files before
//! touching the payload, and a future version 2 can be recognised (and
//! refused with a typed [`SnapshotError::VersionMismatch`]) rather than
//! misparsed. Two [`RunStore`] backends ship with the crate: the in-memory
//! [`MemStore`] and the on-disk, content-hash-keyed [`DirStore`].

mod codec;
mod store;

pub use store::{
    read_snapshot_file, write_snapshot_file, DirStore, MemStore, RunStore, SNAPSHOT_EXTENSION,
};

use crate::adversary::{AttackStats, PeerPolicyState, PolicyState};
use crate::spec::ScenarioSpec;
use crate::world::{AccumulatorTable, ChurnStats, NetStats, SimWorld, UploadMatrix};
use crate::ActiveSets;
use codec::{fnv1a64, Reader, Writer};
use collabsim_gametheory::behavior::BehaviorType;
use collabsim_netsim::article::{
    Article, ArticleId, ArticleRegistry, Edit, EditId, EditKind, EditOutcomeCounts, EditStatus,
};
use collabsim_netsim::clock::SimClock;
use collabsim_netsim::dht::{Dht, DhtKey};
use collabsim_netsim::fault::ConnectionState;
use collabsim_netsim::peer::{Peer, PeerId, PeerRegistry};
use collabsim_netsim::storage::ArticleStore;
use collabsim_netsim::transfer::{Transfer, TransferArenaState, TransferManager, TransferStatus};
use collabsim_reputation::propagation::GlobalReputation;
use collabsim_reputation::sharded::PeerLedgerState;
use rand::rngs::StdRng;

/// Leading magic of every encoded snapshot.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"COLLBSNP";

/// The format version this build writes and reads. Version 2 appended the
/// per-unit learned adversary policies and the per-peer offline-since
/// markers to the payload; version-1 files are refused with a typed
/// [`SnapshotError::VersionMismatch`] rather than misparsed.
pub const SNAPSHOT_VERSION: u16 = 2;

/// Typed failure of snapshot encoding, decoding, storage or restoration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// An underlying filesystem operation failed.
    Io(String),
    /// The bytes are not a well-formed snapshot: bad magic, truncated
    /// framing, content-hash mismatch, or a malformed payload.
    Corrupt(String),
    /// The snapshot was written by a different (newer or older) format
    /// version than this build understands.
    VersionMismatch {
        /// The version found in the header.
        found: u16,
    },
    /// The embedded scenario spec failed to parse or build a simulation.
    Spec(String),
    /// The decoded state is inconsistent with the embedded spec (e.g. a
    /// population-length mismatch) — a hand-edited or mispaired snapshot.
    Mismatch(String),
    /// The requested snapshot key does not exist in the store.
    NotFound(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(msg) => write!(f, "io error: {msg}"),
            Self::Corrupt(msg) => write!(f, "corrupt snapshot: {msg}"),
            Self::VersionMismatch { found } => write!(
                f,
                "unsupported snapshot version {found} (this build reads version {SNAPSHOT_VERSION})"
            ),
            Self::Spec(msg) => write!(f, "embedded scenario spec rejected: {msg}"),
            Self::Mismatch(msg) => write!(f, "snapshot inconsistent with its spec: {msg}"),
            Self::NotFound(key) => write!(f, "snapshot not found: {key}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// The complete mutable state of a [`SimWorld`] at a step boundary, as
/// plain data. Everything here is overwritten verbatim on restore; state
/// that is a pure function of the configuration (service rules, allocator
/// policy, thread plan, phase pipeline) or derivable from these fields
/// (active sets, DHT routing, article caches, upload reverse index) is
/// rebuilt instead of stored.
#[derive(Debug, Clone, Default)]
pub struct WorldState {
    /// Step counter at capture time.
    pub step: u64,
    /// Core step RNG state (xoshiro256** words).
    pub rng: [u64; 4],
    /// Propagation-phase RNG state.
    pub propagation_rng: [u64; 4],
    /// Churn-phase RNG state.
    pub churn_rng: [u64; 4],
    /// Adversary-phase RNG state.
    pub adversary_rng: [u64; 4],
    /// Fault-layer RNG state.
    pub net_rng: [u64; 4],
    /// Every peer record, dense by id.
    pub peers: Vec<Peer>,
    /// Every article (revision history, pending edit, damage counter).
    pub articles: Vec<Article>,
    /// Every edit ever submitted, dense by id.
    pub edits: Vec<Edit>,
    /// Held article replicas per peer (row index = peer id).
    pub held: Vec<Vec<u32>>,
    /// Offered article replicas per peer (row index = peer id).
    pub offered: Vec<Vec<u32>>,
    /// DHT replication factor.
    pub dht_replication: u64,
    /// DHT members in join order.
    pub dht_members: Vec<u32>,
    /// DHT replica sets, sorted by key (holders sorted by id).
    pub dht_replicas: Vec<(u64, Vec<u32>)>,
    /// Per-peer reputation ledger records, dense by id.
    pub ledger: Vec<PeerLedgerState>,
    /// The transfer arena: every slot, the free list and retired totals.
    pub transfers: TransferArenaState,
    /// Rank-major flat Q-values of every learner.
    pub q: Vec<f64>,
    /// Per-learner Q-update counters.
    pub updates: Vec<u64>,
    /// Sentinel-encoded per-peer last-choice state buckets.
    pub last_state: Vec<u32>,
    /// Sentinel-encoded per-peer last-choice action indices.
    pub last_action: Vec<u8>,
    /// Behaviour type per peer (restore verifies these against the spec's
    /// deterministic assignment — a mismatch means the snapshot does not
    /// belong to its embedded spec).
    pub behaviors: Vec<BehaviorType>,
    /// Upload-relation rows, sorted by counterparty id.
    pub uploads: Vec<Vec<(u32, f64)>>,
    /// In-flight download slot per peer.
    pub active_transfer: Vec<Option<u64>>,
    /// Accepted edits since last punishment, per peer.
    pub accepted_since_punishment: Vec<u32>,
    /// The evaluation-phase measurement accumulators.
    pub accumulators: AccumulatorTable,
    /// Whether the measured evaluation phase is active.
    pub measuring: bool,
    /// Steps run since measurement started.
    pub evaluation_steps_run: u64,
    /// Completed-download count at measurement start.
    pub downloads_completed_in_evaluation: u64,
    /// Edit-outcome counts at measurement start.
    pub edit_outcome_baseline: EditOutcomeCounts,
    /// Running churn counters.
    pub churn_stats: ChurnStats,
    /// Latest propagated global reputation, if the phase has run.
    pub global_reputation: Option<GlobalReputation>,
    /// Propagation-phase execution count.
    pub propagation_runs: u64,
    /// Propagated service-reputation cache, if active.
    pub propagated_service_reputation: Option<Vec<f64>>,
    /// Per-unit adversary attack counters, in unit order.
    pub adversary_stats: Vec<AttackStats>,
    /// Queued timed re-entries of the adversary roster.
    pub reentry_schedule: Vec<(u64, u32)>,
    /// Running fault-layer grant accounting.
    pub net_stats: NetStats,
    /// Per-unit learned adversary policy (Q-table plus per-peer
    /// trajectories), in unit order; `None` for scripted strategies.
    pub adversary_policies: Vec<Option<PolicyState>>,
    /// Step at which each currently offline peer went offline (drives the
    /// offline reputation-uptime discount), dense by id.
    pub offline_since: Vec<Option<u64>>,
}

/// One checkpoint: the full [`WorldState`] plus the exact text of the
/// [`ScenarioSpec`] the run was built from, so a snapshot is self-contained
/// — resuming needs no side-channel spec file.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// The originating scenario spec in its exact-round-trip text form.
    pub spec_text: String,
    /// The captured world state.
    pub state: WorldState,
}

fn behavior_tag(behavior: BehaviorType) -> u8 {
    match behavior {
        BehaviorType::Rational => 0,
        BehaviorType::Altruistic => 1,
        BehaviorType::Irrational => 2,
    }
}

fn behavior_from_tag(tag: u8) -> Result<BehaviorType, SnapshotError> {
    match tag {
        0 => Ok(BehaviorType::Rational),
        1 => Ok(BehaviorType::Altruistic),
        2 => Ok(BehaviorType::Irrational),
        other => Err(SnapshotError::Corrupt(format!(
            "invalid behaviour tag {other}"
        ))),
    }
}

fn connection_tag(state: ConnectionState) -> u8 {
    match state {
        ConnectionState::Connected => 0,
        ConnectionState::Degraded => 1,
        ConnectionState::Disconnected => 2,
    }
}

fn connection_from_tag(tag: u8) -> Result<ConnectionState, SnapshotError> {
    match tag {
        0 => Ok(ConnectionState::Connected),
        1 => Ok(ConnectionState::Degraded),
        2 => Ok(ConnectionState::Disconnected),
        other => Err(SnapshotError::Corrupt(format!(
            "invalid connection-state tag {other}"
        ))),
    }
}

fn transfer_status_tag(status: TransferStatus) -> u8 {
    match status {
        TransferStatus::InProgress => 0,
        TransferStatus::Completed => 1,
        TransferStatus::Cancelled => 2,
    }
}

fn transfer_status_from_tag(tag: u8) -> Result<TransferStatus, SnapshotError> {
    match tag {
        0 => Ok(TransferStatus::InProgress),
        1 => Ok(TransferStatus::Completed),
        2 => Ok(TransferStatus::Cancelled),
        other => Err(SnapshotError::Corrupt(format!(
            "invalid transfer-status tag {other}"
        ))),
    }
}

fn write_rng(w: &mut Writer, state: &[u64; 4]) {
    for &word in state {
        w.u64(word);
    }
}

fn read_rng(r: &mut Reader<'_>) -> Result<[u64; 4], SnapshotError> {
    Ok([r.u64()?, r.u64()?, r.u64()?, r.u64()?])
}

fn write_f64_vec(w: &mut Writer, values: &[f64]) {
    w.usize(values.len());
    for &v in values {
        w.f64(v);
    }
}

fn read_f64_vec(r: &mut Reader<'_>) -> Result<Vec<f64>, SnapshotError> {
    let len = r.len()?;
    (0..len).map(|_| r.f64()).collect()
}

fn write_u64_vec(w: &mut Writer, values: &[u64]) {
    w.usize(values.len());
    for &v in values {
        w.u64(v);
    }
}

fn read_u64_vec(r: &mut Reader<'_>) -> Result<Vec<u64>, SnapshotError> {
    let len = r.len()?;
    (0..len).map(|_| r.u64()).collect()
}

fn write_u32_vec(w: &mut Writer, values: &[u32]) {
    w.usize(values.len());
    for &v in values {
        w.u32(v);
    }
}

fn read_u32_vec(r: &mut Reader<'_>) -> Result<Vec<u32>, SnapshotError> {
    let len = r.len()?;
    (0..len).map(|_| r.u32()).collect()
}

fn write_policy(w: &mut Writer, policy: &PolicyState) {
    w.u32(policy.states);
    w.u32(policy.actions);
    write_f64_vec(w, &policy.q);
    w.u64(policy.updates);
    w.usize(policy.per_peer.len());
    for peer in &policy.per_peer {
        w.opt_u64(peer.last_state);
        w.u32(peer.last_action);
        w.u64(peer.steps_since_reset);
        w.f64(peer.last_downloaded);
        w.f64(peer.pending_shed);
    }
}

fn read_policy(r: &mut Reader<'_>) -> Result<PolicyState, SnapshotError> {
    let states = r.u32()?;
    let actions = r.u32()?;
    let q = read_f64_vec(r)?;
    let updates = r.u64()?;
    let peer_count = r.len()?;
    let mut per_peer = Vec::with_capacity(peer_count);
    for _ in 0..peer_count {
        per_peer.push(PeerPolicyState {
            last_state: r.opt_u64()?,
            last_action: r.u32()?,
            steps_since_reset: r.u64()?,
            last_downloaded: r.f64()?,
            pending_shed: r.f64()?,
        });
    }
    Ok(PolicyState {
        states,
        actions,
        q,
        updates,
        per_peer,
    })
}

fn write_rows(w: &mut Writer, rows: &[Vec<u32>]) {
    w.usize(rows.len());
    for row in rows {
        write_u32_vec(w, row);
    }
}

fn read_rows(r: &mut Reader<'_>) -> Result<Vec<Vec<u32>>, SnapshotError> {
    let len = r.len()?;
    (0..len).map(|_| read_u32_vec(r)).collect()
}

impl WorldState {
    /// Captures the complete mutable state of a world. Must be called at a
    /// step boundary (between [`crate::Simulation::step`] calls) — mid-step
    /// the pipeline holds transient scratch the snapshot cannot see.
    pub fn capture(world: &SimWorld) -> Self {
        let population = world.config.population;
        Self {
            step: world.clock.now(),
            rng: world.rng.to_state(),
            propagation_rng: world.propagation_rng.to_state(),
            churn_rng: world.churn_rng.to_state(),
            adversary_rng: world.adversary_rng.to_state(),
            net_rng: world.net_rng.to_state(),
            peers: world.peers.iter().cloned().collect(),
            articles: world.articles.articles().cloned().collect(),
            edits: world.articles.edits().cloned().collect(),
            held: world
                .store
                .held_rows()
                .iter()
                .map(|row| row.iter().map(|a| a.0).collect())
                .collect(),
            offered: world
                .store
                .offered_rows()
                .iter()
                .map(|row| row.iter().map(|a| a.0).collect())
                .collect(),
            dht_replication: world.dht.replication() as u64,
            dht_members: world.dht.member_peers().iter().map(|p| p.0).collect(),
            dht_replicas: world
                .dht
                .replica_entries()
                .into_iter()
                .map(|(key, holders)| (key.0, holders.into_iter().map(|p| p.0).collect()))
                .collect(),
            ledger: (0..population)
                .map(|p| world.ledger.export_peer_state(p))
                .collect(),
            transfers: world.transfers.export_state(),
            q: world.agents.q_values().to_vec(),
            updates: world.agents.update_counts().to_vec(),
            last_state: world.agents.last_states_raw().to_vec(),
            last_action: world.agents.last_actions_raw().to_vec(),
            behaviors: world.behaviors.clone(),
            uploads: world.uploads.sorted_rows(),
            active_transfer: world.active_transfer.clone(),
            accepted_since_punishment: world.accepted_since_punishment.clone(),
            accumulators: world.accumulators.clone(),
            measuring: world.measuring,
            evaluation_steps_run: world.evaluation_steps_run,
            downloads_completed_in_evaluation: world.downloads_completed_in_evaluation as u64,
            edit_outcome_baseline: world.edit_outcome_baseline,
            churn_stats: world.churn_stats,
            global_reputation: world.global_reputation.as_ref().map(|g| GlobalReputation {
                values: g.values.clone(),
                iterations: g.iterations,
                converged: g.converged,
            }),
            propagation_runs: world.propagation_runs,
            propagated_service_reputation: world.propagated_service_reputation.clone(),
            adversary_stats: world.adversaries.export_unit_stats(),
            reentry_schedule: world
                .adversaries
                .schedule_entries()
                .iter()
                .map(|&(at, peer)| (at, peer.0))
                .collect(),
            net_stats: world.net_stats,
            adversary_policies: world.adversaries.export_policies(),
            offline_since: world.offline_since.clone(),
        }
    }

    /// Overwrites a freshly constructed world (same spec) with this state.
    /// Derived structures — active sets, DHT routing, article caches, the
    /// upload reverse index — are rebuilt from the restored data.
    pub fn apply(&self, world: &mut SimWorld) -> Result<(), SnapshotError> {
        let population = world.config.population;
        let mismatch = |what: &str| -> SnapshotError {
            SnapshotError::Mismatch(format!(
                "{what} does not match the embedded spec (population {population})"
            ))
        };
        if self.peers.len() != population {
            return Err(mismatch("peer count"));
        }
        if self
            .peers
            .iter()
            .enumerate()
            .any(|(i, p)| p.id.index() != i)
        {
            return Err(SnapshotError::Mismatch(
                "peer ids are not dense".to_string(),
            ));
        }
        if self.behaviors != world.behaviors {
            return Err(SnapshotError::Mismatch(
                "behaviour assignment differs from the spec's deterministic assignment".to_string(),
            ));
        }
        if self.ledger.len() != population
            || self.active_transfer.len() != population
            || self.accepted_since_punishment.len() != population
            || self.uploads.len() != population
            || self.accumulators.len() != population
        {
            return Err(mismatch("a per-peer table's length"));
        }
        if self.q.len() != world.agents.q_values().len()
            || self.updates.len() != world.agents.update_counts().len()
            || self.last_state.len() != population
            || self.last_action.len() != population
        {
            return Err(mismatch("the agent table's learning-state layout"));
        }
        if self.adversary_stats.len() != world.adversaries.units().len()
            || self.adversary_policies.len() != world.adversaries.units().len()
        {
            return Err(mismatch("the adversary unit count"));
        }
        if self.offline_since.len() != population {
            return Err(mismatch("the offline-since table's length"));
        }

        world.clock = SimClock::starting_at(self.step);
        world.rng = StdRng::from_state(self.rng);
        world.propagation_rng = StdRng::from_state(self.propagation_rng);
        world.churn_rng = StdRng::from_state(self.churn_rng);
        world.adversary_rng = StdRng::from_state(self.adversary_rng);
        world.net_rng = StdRng::from_state(self.net_rng);
        world.peers = PeerRegistry::from_peers(self.peers.clone());
        world.articles = ArticleRegistry::from_parts(self.articles.clone(), self.edits.clone());
        world.store = ArticleStore::from_rows(
            self.held
                .iter()
                .map(|row| row.iter().map(|&a| ArticleId(a)).collect())
                .collect(),
            self.offered
                .iter()
                .map(|row| row.iter().map(|&a| ArticleId(a)).collect())
                .collect(),
        );
        world.dht = Dht::from_parts(
            self.dht_replication as usize,
            self.dht_members.iter().map(|&p| PeerId(p)).collect(),
            self.dht_replicas
                .iter()
                .map(|(key, holders)| (DhtKey(*key), holders.iter().map(|&p| PeerId(p)).collect()))
                .collect(),
        );
        for (p, record) in self.ledger.iter().enumerate() {
            world.ledger.restore_peer_state(p, record);
        }
        world.transfers = TransferManager::from_state(self.transfers.clone());
        world.agents.restore_learning_state(
            &self.q,
            &self.updates,
            &self.last_state,
            &self.last_action,
        );
        world.uploads = UploadMatrix::from_sorted_rows(self.uploads.clone());
        world.active_transfer = self.active_transfer.clone();
        world.accepted_since_punishment = self.accepted_since_punishment.clone();
        world.accumulators = self.accumulators.clone();
        world.measuring = self.measuring;
        world.evaluation_steps_run = self.evaluation_steps_run;
        world.downloads_completed_in_evaluation = self.downloads_completed_in_evaluation as usize;
        world.edit_outcome_baseline = self.edit_outcome_baseline;
        world.churn_stats = self.churn_stats;
        world.global_reputation = self.global_reputation.as_ref().map(|g| GlobalReputation {
            values: g.values.clone(),
            iterations: g.iterations,
            converged: g.converged,
        });
        world.propagation_runs = self.propagation_runs;
        world.propagated_service_reputation = self.propagated_service_reputation.clone();
        world.adversaries.restore_unit_stats(&self.adversary_stats);
        world.adversaries.restore_schedule(
            self.reentry_schedule
                .iter()
                .map(|&(at, peer)| (at, PeerId(peer)))
                .collect(),
        );
        world.net_stats = self.net_stats;
        world.adversaries.restore_policies(&self.adversary_policies);
        world.offline_since = self.offline_since.clone();
        world.active = ActiveSets::recompute(&world.peers, &world.behaviors);
        Ok(())
    }

    fn encode(&self, w: &mut Writer) {
        w.u64(self.step);
        write_rng(w, &self.rng);
        write_rng(w, &self.propagation_rng);
        write_rng(w, &self.churn_rng);
        write_rng(w, &self.adversary_rng);
        write_rng(w, &self.net_rng);
        w.usize(self.peers.len());
        for peer in &self.peers {
            w.u32(peer.id.0);
            w.f64(peer.upload_capacity);
            w.f64(peer.download_capacity);
            w.u32(peer.storage_capacity);
            w.f64(peer.shared_upload_fraction);
            w.u32(peer.shared_articles);
            w.bool(peer.online);
            w.u8(connection_tag(peer.connection));
            w.u64(peer.joined_at);
        }
        w.usize(self.articles.len());
        for article in &self.articles {
            w.u32(article.id.0);
            w.u32(article.creator.0);
            w.u64(article.created_at);
            write_u32_vec(
                w,
                &article
                    .revision_authors
                    .iter()
                    .map(|p| p.0)
                    .collect::<Vec<_>>(),
            );
            w.u32(article.accepted_destructive);
            w.opt_u64(article.pending_edit.map(|e| e.0));
        }
        w.usize(self.edits.len());
        for edit in &self.edits {
            w.u64(edit.id.0);
            w.u32(edit.article.0);
            w.u32(edit.author.0);
            w.u8(match edit.kind {
                EditKind::Constructive => 0,
                EditKind::Destructive => 1,
            });
            w.u8(match edit.status {
                EditStatus::Pending => 0,
                EditStatus::Accepted => 1,
                EditStatus::Declined => 2,
            });
            w.u64(edit.submitted_at);
            w.opt_u64(edit.decided_at);
        }
        write_rows(w, &self.held);
        write_rows(w, &self.offered);
        w.u64(self.dht_replication);
        write_u32_vec(w, &self.dht_members);
        w.usize(self.dht_replicas.len());
        for (key, holders) in &self.dht_replicas {
            w.u64(*key);
            write_u32_vec(w, holders);
        }
        w.usize(self.ledger.len());
        for record in &self.ledger {
            w.f64(record.sharing);
            w.f64(record.editing);
            w.f64(record.total_articles);
            w.f64(record.total_bandwidth);
            w.u64(record.total_votes);
            w.u64(record.total_edits);
            w.bool(record.can_edit);
            w.bool(record.can_vote);
            w.u32(record.unsuccessful_votes);
            w.u32(record.declined_edits);
        }
        w.usize(self.transfers.transfers.len());
        for t in &self.transfers.transfers {
            w.u64(t.id);
            w.u32(t.downloader.0);
            w.u32(t.source.0);
            w.u32(t.article.0);
            w.f64(t.size);
            w.f64(t.received);
            w.u64(t.started_at);
            w.opt_u64(t.finished_at);
            w.u8(transfer_status_tag(t.status));
            w.u32(t.failures);
            w.u64(t.backoff_until);
            w.u64(t.last_progress_at);
        }
        w.usize(self.transfers.in_use.len());
        for &b in &self.transfers.in_use {
            w.bool(b);
        }
        write_u32_vec(w, &self.transfers.free);
        w.u64(self.transfers.completed);
        w.u64(self.transfers.completed_duration_sum);
        write_f64_vec(w, &self.transfers.retired_received);
        write_f64_vec(w, &self.transfers.retired_served);
        write_f64_vec(w, &self.q);
        write_u64_vec(w, &self.updates);
        write_u32_vec(w, &self.last_state);
        w.usize(self.last_action.len());
        for &a in &self.last_action {
            w.u8(a);
        }
        w.usize(self.behaviors.len());
        for &b in &self.behaviors {
            w.u8(behavior_tag(b));
        }
        w.usize(self.uploads.len());
        for row in &self.uploads {
            w.usize(row.len());
            for &(to, amount) in row {
                w.u32(to);
                w.f64(amount);
            }
        }
        w.usize(self.active_transfer.len());
        for &slot in &self.active_transfer {
            w.opt_u64(slot);
        }
        write_u32_vec(w, &self.accepted_since_punishment);
        write_f64_vec(w, &self.accumulators.shared_bandwidth_sum);
        write_f64_vec(w, &self.accumulators.shared_articles_sum);
        write_f64_vec(w, &self.accumulators.downloaded_sum);
        write_f64_vec(w, &self.accumulators.utility_sum);
        write_u64_vec(w, &self.accumulators.constructive_edits);
        write_u64_vec(w, &self.accumulators.destructive_edits);
        write_u64_vec(w, &self.accumulators.votes);
        write_u64_vec(w, &self.accumulators.steps);
        w.bool(self.measuring);
        w.u64(self.evaluation_steps_run);
        w.u64(self.downloads_completed_in_evaluation);
        w.u64(self.edit_outcome_baseline.accepted_constructive);
        w.u64(self.edit_outcome_baseline.accepted_destructive);
        w.u64(self.edit_outcome_baseline.declined_constructive);
        w.u64(self.edit_outcome_baseline.declined_destructive);
        w.u64(self.edit_outcome_baseline.pending);
        w.u64(self.churn_stats.joins);
        w.u64(self.churn_stats.leaves);
        w.u64(self.churn_stats.whitewashes);
        w.f64(self.churn_stats.reentry_reputation_sum);
        w.f64(self.churn_stats.whitewash_reputation_shed_sum);
        match &self.global_reputation {
            Some(global) => {
                w.u8(1);
                write_f64_vec(w, &global.values);
                w.usize(global.iterations);
                w.bool(global.converged);
            }
            None => w.u8(0),
        }
        w.u64(self.propagation_runs);
        match &self.propagated_service_reputation {
            Some(values) => {
                w.u8(1);
                write_f64_vec(w, values);
            }
            None => w.u8(0),
        }
        w.usize(self.adversary_stats.len());
        for stats in &self.adversary_stats {
            w.u64(stats.resets);
            w.f64(stats.reputation_shed_sum);
            w.u64(stats.forced_steps);
            w.u64(stats.departures);
            w.u64(stats.rejoins);
            w.u64(stats.override_votes);
        }
        w.usize(self.reentry_schedule.len());
        for &(at, peer) in &self.reentry_schedule {
            w.u64(at);
            w.u32(peer);
        }
        w.f64(self.net_stats.grants_offered);
        w.f64(self.net_stats.grants_applied);
        w.f64(self.net_stats.grants_lost);
        w.f64(self.net_stats.grants_delayed);
        w.u64(self.net_stats.transfers_failed);
        w.u64(self.net_stats.transfers_timed_out);
        w.u64(self.net_stats.transfers_rerouted);
        w.usize(self.adversary_policies.len());
        for policy in &self.adversary_policies {
            match policy {
                Some(policy) => {
                    w.u8(1);
                    write_policy(w, policy);
                }
                None => w.u8(0),
            }
        }
        w.usize(self.offline_since.len());
        for &since in &self.offline_since {
            w.opt_u64(since);
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        let step = r.u64()?;
        let rng = read_rng(r)?;
        let propagation_rng = read_rng(r)?;
        let churn_rng = read_rng(r)?;
        let adversary_rng = read_rng(r)?;
        let net_rng = read_rng(r)?;
        let peer_count = r.len()?;
        let mut peers = Vec::with_capacity(peer_count);
        for _ in 0..peer_count {
            peers.push(Peer {
                id: PeerId(r.u32()?),
                upload_capacity: r.f64()?,
                download_capacity: r.f64()?,
                storage_capacity: r.u32()?,
                shared_upload_fraction: r.f64()?,
                shared_articles: r.u32()?,
                online: r.bool()?,
                connection: connection_from_tag(r.u8()?)?,
                joined_at: r.u64()?,
            });
        }
        let article_count = r.len()?;
        let mut articles = Vec::with_capacity(article_count);
        for _ in 0..article_count {
            let id = ArticleId(r.u32()?);
            let creator = PeerId(r.u32()?);
            let created_at = r.u64()?;
            let revision_authors = read_u32_vec(r)?.into_iter().map(PeerId).collect();
            let accepted_destructive = r.u32()?;
            let pending_edit = r.opt_u64()?.map(EditId);
            articles.push(Article::from_parts(
                id,
                creator,
                created_at,
                revision_authors,
                accepted_destructive,
                pending_edit,
            ));
        }
        let edit_count = r.len()?;
        let mut edits = Vec::with_capacity(edit_count);
        for _ in 0..edit_count {
            edits.push(Edit {
                id: EditId(r.u64()?),
                article: ArticleId(r.u32()?),
                author: PeerId(r.u32()?),
                kind: match r.u8()? {
                    0 => EditKind::Constructive,
                    1 => EditKind::Destructive,
                    other => {
                        return Err(SnapshotError::Corrupt(format!(
                            "invalid edit-kind tag {other}"
                        )))
                    }
                },
                status: match r.u8()? {
                    0 => EditStatus::Pending,
                    1 => EditStatus::Accepted,
                    2 => EditStatus::Declined,
                    other => {
                        return Err(SnapshotError::Corrupt(format!(
                            "invalid edit-status tag {other}"
                        )))
                    }
                },
                submitted_at: r.u64()?,
                decided_at: r.opt_u64()?,
            });
        }
        let held = read_rows(r)?;
        let offered = read_rows(r)?;
        let dht_replication = r.u64()?;
        let dht_members = read_u32_vec(r)?;
        let replica_count = r.len()?;
        let mut dht_replicas = Vec::with_capacity(replica_count);
        for _ in 0..replica_count {
            let key = r.u64()?;
            dht_replicas.push((key, read_u32_vec(r)?));
        }
        let ledger_count = r.len()?;
        let mut ledger = Vec::with_capacity(ledger_count);
        for _ in 0..ledger_count {
            ledger.push(PeerLedgerState {
                sharing: r.f64()?,
                editing: r.f64()?,
                total_articles: r.f64()?,
                total_bandwidth: r.f64()?,
                total_votes: r.u64()?,
                total_edits: r.u64()?,
                can_edit: r.bool()?,
                can_vote: r.bool()?,
                unsuccessful_votes: r.u32()?,
                declined_edits: r.u32()?,
            });
        }
        let transfer_count = r.len()?;
        let mut transfer_slots = Vec::with_capacity(transfer_count);
        for _ in 0..transfer_count {
            transfer_slots.push(Transfer {
                id: r.u64()?,
                downloader: PeerId(r.u32()?),
                source: PeerId(r.u32()?),
                article: ArticleId(r.u32()?),
                size: r.f64()?,
                received: r.f64()?,
                started_at: r.u64()?,
                finished_at: r.opt_u64()?,
                status: transfer_status_from_tag(r.u8()?)?,
                failures: r.u32()?,
                backoff_until: r.u64()?,
                last_progress_at: r.u64()?,
            });
        }
        let in_use_count = r.len()?;
        let mut in_use = Vec::with_capacity(in_use_count);
        for _ in 0..in_use_count {
            in_use.push(r.bool()?);
        }
        let transfers = TransferArenaState {
            transfers: transfer_slots,
            in_use,
            free: read_u32_vec(r)?,
            completed: r.u64()?,
            completed_duration_sum: r.u64()?,
            retired_received: read_f64_vec(r)?,
            retired_served: read_f64_vec(r)?,
        };
        let q = read_f64_vec(r)?;
        let updates = read_u64_vec(r)?;
        let last_state = read_u32_vec(r)?;
        let action_count = r.len()?;
        let mut last_action = Vec::with_capacity(action_count);
        for _ in 0..action_count {
            last_action.push(r.u8()?);
        }
        let behavior_count = r.len()?;
        let mut behaviors = Vec::with_capacity(behavior_count);
        for _ in 0..behavior_count {
            behaviors.push(behavior_from_tag(r.u8()?)?);
        }
        let upload_rows = r.len()?;
        let mut uploads = Vec::with_capacity(upload_rows);
        for _ in 0..upload_rows {
            let entries = r.len()?;
            let mut row = Vec::with_capacity(entries);
            for _ in 0..entries {
                let to = r.u32()?;
                row.push((to, r.f64()?));
            }
            uploads.push(row);
        }
        let slot_count = r.len()?;
        let mut active_transfer = Vec::with_capacity(slot_count);
        for _ in 0..slot_count {
            active_transfer.push(r.opt_u64()?);
        }
        let accepted_since_punishment = read_u32_vec(r)?;
        let accumulators = AccumulatorTable {
            shared_bandwidth_sum: read_f64_vec(r)?,
            shared_articles_sum: read_f64_vec(r)?,
            downloaded_sum: read_f64_vec(r)?,
            utility_sum: read_f64_vec(r)?,
            constructive_edits: read_u64_vec(r)?,
            destructive_edits: read_u64_vec(r)?,
            votes: read_u64_vec(r)?,
            steps: read_u64_vec(r)?,
        };
        let measuring = r.bool()?;
        let evaluation_steps_run = r.u64()?;
        let downloads_completed_in_evaluation = r.u64()?;
        let edit_outcome_baseline = EditOutcomeCounts {
            accepted_constructive: r.u64()?,
            accepted_destructive: r.u64()?,
            declined_constructive: r.u64()?,
            declined_destructive: r.u64()?,
            pending: r.u64()?,
        };
        let churn_stats = ChurnStats {
            joins: r.u64()?,
            leaves: r.u64()?,
            whitewashes: r.u64()?,
            reentry_reputation_sum: r.f64()?,
            whitewash_reputation_shed_sum: r.f64()?,
        };
        let global_reputation = match r.u8()? {
            0 => None,
            1 => Some(GlobalReputation {
                values: read_f64_vec(r)?,
                iterations: r.u64()? as usize,
                converged: r.bool()?,
            }),
            other => {
                return Err(SnapshotError::Corrupt(format!(
                    "invalid option tag {other}"
                )))
            }
        };
        let propagation_runs = r.u64()?;
        let propagated_service_reputation = match r.u8()? {
            0 => None,
            1 => Some(read_f64_vec(r)?),
            other => {
                return Err(SnapshotError::Corrupt(format!(
                    "invalid option tag {other}"
                )))
            }
        };
        let stats_count = r.len()?;
        let mut adversary_stats = Vec::with_capacity(stats_count);
        for _ in 0..stats_count {
            adversary_stats.push(AttackStats {
                resets: r.u64()?,
                reputation_shed_sum: r.f64()?,
                forced_steps: r.u64()?,
                departures: r.u64()?,
                rejoins: r.u64()?,
                override_votes: r.u64()?,
            });
        }
        let schedule_count = r.len()?;
        let mut reentry_schedule = Vec::with_capacity(schedule_count);
        for _ in 0..schedule_count {
            let at = r.u64()?;
            reentry_schedule.push((at, r.u32()?));
        }
        let net_stats = NetStats {
            grants_offered: r.f64()?,
            grants_applied: r.f64()?,
            grants_lost: r.f64()?,
            grants_delayed: r.f64()?,
            transfers_failed: r.u64()?,
            transfers_timed_out: r.u64()?,
            transfers_rerouted: r.u64()?,
        };
        let policy_count = r.len()?;
        let mut adversary_policies = Vec::with_capacity(policy_count);
        for _ in 0..policy_count {
            adversary_policies.push(match r.u8()? {
                0 => None,
                1 => Some(read_policy(r)?),
                other => {
                    return Err(SnapshotError::Corrupt(format!(
                        "invalid option tag {other}"
                    )))
                }
            });
        }
        let since_count = r.len()?;
        let mut offline_since = Vec::with_capacity(since_count);
        for _ in 0..since_count {
            offline_since.push(r.opt_u64()?);
        }
        Ok(Self {
            step,
            rng,
            propagation_rng,
            churn_rng,
            adversary_rng,
            net_rng,
            peers,
            articles,
            edits,
            held,
            offered,
            dht_replication,
            dht_members,
            dht_replicas,
            ledger,
            transfers,
            q,
            updates,
            last_state,
            last_action,
            behaviors,
            uploads,
            active_transfer,
            accepted_since_punishment,
            accumulators,
            measuring,
            evaluation_steps_run,
            downloads_completed_in_evaluation,
            edit_outcome_baseline,
            churn_stats,
            global_reputation,
            propagation_runs,
            propagated_service_reputation,
            adversary_stats,
            reentry_schedule,
            net_stats,
            adversary_policies,
            offline_since,
        })
    }
}

impl Snapshot {
    /// Captures a snapshot of `world`, embedding `spec` (the spec the
    /// simulation was built from) as its exact text form.
    pub fn capture(world: &SimWorld, spec: &ScenarioSpec) -> Self {
        Self {
            spec_text: spec.to_text(),
            state: WorldState::capture(world),
        }
    }

    /// The step counter at capture time.
    pub fn step(&self) -> u64 {
        self.state.step
    }

    /// Restores this snapshot's state onto a freshly constructed world
    /// (built from the same spec). See [`WorldState::apply`].
    pub fn apply(&self, world: &mut SimWorld) -> Result<(), SnapshotError> {
        self.state.apply(world)
    }

    /// Encodes the snapshot into its framed binary form:
    /// magic, version, payload length, payload, FNV-1a64 content hash.
    /// Encoding is deterministic — equal snapshots produce equal bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = Writer::new();
        payload.str(&self.spec_text);
        self.state.encode(&mut payload);
        let payload = payload.into_bytes();
        let mut bytes = Vec::with_capacity(payload.len() + 26);
        bytes.extend_from_slice(&SNAPSHOT_MAGIC);
        bytes.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        let hash = fnv1a64(&payload);
        bytes.extend_from_slice(&payload);
        bytes.extend_from_slice(&hash.to_le_bytes());
        bytes
    }

    /// Decodes a framed snapshot, verifying magic, version, length and
    /// content hash before parsing the payload. Every malformation is a
    /// typed [`SnapshotError`], never a panic.
    pub fn decode(bytes: &[u8]) -> Result<Self, SnapshotError> {
        const HEADER: usize = 8 + 2 + 8;
        if bytes.len() < HEADER + 8 {
            return Err(SnapshotError::Corrupt(format!(
                "{} bytes is shorter than the minimal frame",
                bytes.len()
            )));
        }
        if bytes[..8] != SNAPSHOT_MAGIC {
            return Err(SnapshotError::Corrupt(
                "bad magic (not a collabsim snapshot)".to_string(),
            ));
        }
        let version = u16::from_le_bytes(bytes[8..10].try_into().unwrap());
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::VersionMismatch { found: version });
        }
        let payload_len = u64::from_le_bytes(bytes[10..HEADER].try_into().unwrap()) as usize;
        let expected_total = HEADER
            .checked_add(payload_len)
            .and_then(|n| n.checked_add(8));
        if expected_total != Some(bytes.len()) {
            return Err(SnapshotError::Corrupt(format!(
                "frame length mismatch: header announces a {payload_len}-byte payload, file has {} bytes",
                bytes.len()
            )));
        }
        let payload = &bytes[HEADER..HEADER + payload_len];
        let stored_hash = u64::from_le_bytes(bytes[HEADER + payload_len..].try_into().unwrap());
        let actual_hash = fnv1a64(payload);
        if stored_hash != actual_hash {
            return Err(SnapshotError::Corrupt(format!(
                "content hash mismatch (stored {stored_hash:016x}, computed {actual_hash:016x})"
            )));
        }
        let mut reader = Reader::new(payload);
        let spec_text = reader.str()?;
        let state = WorldState::decode(&mut reader)?;
        reader.finish()?;
        Ok(Self { spec_text, state })
    }

    /// Forks the snapshot onto a different originating spec — the
    /// warm-start primitive: equilibrate a base population once, then fork
    /// one cell per scenario variant from the shared checkpoint.
    ///
    /// The new spec must describe the *same* population (size, behaviour
    /// mix, seed — [`WorldState::apply`] rejects anything whose
    /// deterministic behaviour assignment differs), but may change what
    /// happens next: incentive scheme, phase lengths, and in particular the
    /// adversary roster. Per-unit attack counters are realigned to the new
    /// spec's unit list — units the fork adds start with zeroed
    /// [`AttackStats`] (fresh attackers entering an equilibrated network),
    /// units it removes drop their counters, and the re-entry schedule of a
    /// removed roster is cleared.
    /// Learned adversary policies survive the fork only when the new
    /// spec's unit list has the same length (the train → frozen-eval case,
    /// where a trained Q-table is carried into a zero-exploration replay);
    /// any other roster change starts every unit untrained.
    pub fn with_spec(&self, spec: &ScenarioSpec) -> Snapshot {
        let mut state = self.state.clone();
        let units = spec.config().adversaries.len();
        state.adversary_stats.resize(units, AttackStats::default());
        if state.adversary_policies.len() != units {
            state.adversary_policies = vec![None; units];
        }
        if units == 0 {
            state.reentry_schedule.clear();
        }
        Snapshot {
            spec_text: spec.to_text(),
            state,
        }
    }

    /// The content-derived store key of this snapshot:
    /// `step<step>-<hash>` — lexicographic order is chronological order,
    /// and the hash makes distinct states at the same step distinct keys.
    pub fn key(&self) -> String {
        let bytes = self.encode();
        format!("step{:010}-{:016x}", self.state.step, fnv1a64(&bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{PhaseConfig, SimulationConfig};
    use crate::engine::Simulation;
    use collabsim_gametheory::behavior::BehaviorMix;

    fn quick_spec() -> ScenarioSpec {
        let config = SimulationConfig {
            population: 20,
            initial_articles: 10,
            phases: PhaseConfig {
                training_steps: 60,
                evaluation_steps: 40,
                ..Default::default()
            },
            ..Default::default()
        }
        .with_mix(BehaviorMix::new(0.5, 0.25, 0.25))
        .with_seed(0xC0FFEE);
        ScenarioSpec::from_config(config).expect("valid config")
    }

    #[test]
    fn encode_decode_round_trips_bitwise() {
        let spec = quick_spec();
        let mut sim = Simulation::from_spec(&spec).unwrap();
        for _ in 0..30 {
            sim.step(10_000.0);
        }
        let snapshot = sim.snapshot(&spec);
        let bytes = snapshot.encode();
        let decoded = Snapshot::decode(&bytes).expect("decodes");
        assert_eq!(decoded.encode(), bytes, "re-encoding must be bit-identical");
        assert_eq!(decoded.spec_text, snapshot.spec_text);
        assert_eq!(decoded.step(), 30);
    }

    #[test]
    fn truncation_and_bit_flips_are_detected() {
        let spec = quick_spec();
        let mut sim = Simulation::from_spec(&spec).unwrap();
        sim.step(10_000.0);
        let bytes = sim.snapshot(&spec).encode();
        for cut in [0, 5, 17, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                matches!(
                    Snapshot::decode(&bytes[..cut]),
                    Err(SnapshotError::Corrupt(_))
                ),
                "truncation at {cut} must be detected"
            );
        }
        let mut flipped = bytes.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x40;
        assert!(matches!(
            Snapshot::decode(&flipped),
            Err(SnapshotError::Corrupt(_))
        ));
    }

    #[test]
    fn version_mismatch_is_typed() {
        let spec = quick_spec();
        let sim = Simulation::from_spec(&spec).unwrap();
        let mut bytes = sim.snapshot(&spec).encode();
        bytes[8] = 0x63; // version 0x??63
        bytes[9] = 0x00;
        assert!(matches!(
            Snapshot::decode(&bytes),
            Err(SnapshotError::VersionMismatch { found: 0x63 })
        ));
    }

    #[test]
    fn resume_mid_training_is_bit_identical() {
        let spec = quick_spec();
        let straight = Simulation::from_spec(&spec).unwrap().run();

        let mut first_half = Simulation::from_spec(&spec).unwrap();
        for _ in 0..25 {
            first_half.step(spec.config().phases.training_temperature);
        }
        let snapshot = first_half.snapshot(&spec);
        drop(first_half);
        let bytes = snapshot.encode();
        let restored = Snapshot::decode(&bytes).unwrap();
        let mut resumed = Simulation::resume_from(&restored).unwrap();
        let report = resumed.finish();
        assert_eq!(
            format!("{straight:?}"),
            format!("{report:?}"),
            "resumed run must reproduce the straight run bit for bit"
        );
    }

    #[test]
    fn checkpointed_run_is_unperturbed_and_resumes_mid_evaluation() {
        let spec = quick_spec();
        let straight = Simulation::from_spec(&spec).unwrap().run();

        // 60 training + 40 evaluation steps, checkpoint every 25 global
        // steps → snapshots at 25, 50 (training), 75, 100 (evaluation).
        let mut store = MemStore::new();
        let mut sim = Simulation::from_spec(&spec).unwrap();
        let (checkpointed, keys) = sim
            .run_with_checkpoints(&spec, 25, &mut store)
            .expect("checkpointed run succeeds");
        assert_eq!(
            format!("{straight:?}"),
            format!("{checkpointed:?}"),
            "taking checkpoints must not perturb the run"
        );
        assert_eq!(keys.len(), 4);
        assert_eq!(store.keys().unwrap(), keys, "keys sort chronologically");

        let mid_evaluation = store.get(&keys[2]).expect("snapshot at step 75");
        assert!(mid_evaluation.state.measuring);
        assert_eq!(mid_evaluation.step(), 75);
        let report = Simulation::resume_from(&mid_evaluation).unwrap().finish();
        assert_eq!(format!("{straight:?}"), format!("{report:?}"));
    }

    #[test]
    fn resume_restores_every_named_rng_stream() {
        // A scenario exercising churn + adversaries + propagation + faults
        // draws from all five streams; resume must continue each stream
        // exactly where it stopped.
        let mut config = SimulationConfig {
            population: 24,
            initial_articles: 8,
            phases: PhaseConfig {
                training_steps: 50,
                evaluation_steps: 30,
                ..Default::default()
            },
            ..Default::default()
        }
        .with_mix(BehaviorMix::new(0.5, 0.25, 0.25))
        .with_seed(7)
        .with_propagation(
            collabsim_reputation::propagation::PropagationScheme::EigenTrust,
            10,
        );
        config.churn = collabsim_netsim::churn::ChurnModel {
            join_probability: 0.02,
            leave_probability: 0.02,
            whitewash_probability: 0.01,
        };
        config.network = collabsim_netsim::fault::LinkModel::IidLoss { loss: 0.05 };
        config.adversaries = vec![crate::adversary::AdversarySpec::new("naive-whitewash", 3)];
        let spec = ScenarioSpec::from_config(config).expect("valid config");

        let straight = Simulation::from_spec(&spec).unwrap().run();
        let mut sim = Simulation::from_spec(&spec).unwrap();
        for _ in 0..23 {
            sim.step(spec.config().phases.training_temperature);
        }
        let restored = Snapshot::decode(&sim.snapshot(&spec).encode()).unwrap();
        let mut resumed = Simulation::resume_from(&restored).unwrap();
        let report = resumed.finish();
        assert_eq!(format!("{straight:?}"), format!("{report:?}"));
    }

    #[test]
    fn warm_start_fork_onto_an_adversary_cell_is_deterministic() {
        // Equilibrate an adversary-free base population through training,
        // then fork a strategy cell from the shared checkpoint: the fork
        // realigns the per-unit attack counters (fresh attackers enter an
        // equilibrated network with zeroed stats), and an in-memory resume
        // is bit-identical to a resume of the encoded/decoded fork — the
        // warm == cold property of the warm-started grids.
        let base = quick_spec();
        let mut sim = Simulation::from_spec(&base).unwrap();
        sim.run_training();
        let checkpoint = sim.snapshot(&base);
        assert_eq!(checkpoint.step(), 60);
        assert!(checkpoint.state.adversary_stats.is_empty());

        let cell_config = SimulationConfig {
            population: 20,
            initial_articles: 10,
            phases: PhaseConfig {
                training_steps: 60,
                evaluation_steps: 40,
                ..Default::default()
            },
            adversaries: vec![crate::adversary::AdversarySpec::new("collusion-ring", 2)],
            ..Default::default()
        }
        .with_mix(BehaviorMix::new(0.5, 0.25, 0.25))
        .with_seed(0xC0FFEE);
        let cell_spec = ScenarioSpec::from_config(cell_config).expect("valid cell config");

        let fork = checkpoint.with_spec(&cell_spec);
        assert_eq!(fork.state.adversary_stats.len(), 1, "one fresh unit");
        let warm = Simulation::resume_from(&fork).unwrap().finish();
        let cold = Simulation::resume_from(&Snapshot::decode(&fork.encode()).unwrap())
            .unwrap()
            .finish();
        assert_eq!(
            format!("{warm:?}"),
            format!("{cold:?}"),
            "warm in-memory fork and cold on-disk fork must agree bit for bit"
        );
    }

    #[test]
    fn learned_policy_survives_the_codec_and_same_shape_forks() {
        // A training run of the learning adversary leaves a non-trivial
        // Q-table in the snapshot; the policy must round-trip bit for bit
        // through encode/decode, survive a with_spec fork onto a same-shape
        // roster (the train → frozen-eval handoff), and be dropped by a
        // fork that changes the unit count.
        let mut config = SimulationConfig {
            population: 20,
            initial_articles: 10,
            phases: PhaseConfig {
                training_steps: 60,
                evaluation_steps: 40,
                ..Default::default()
            },
            ..Default::default()
        }
        .with_mix(BehaviorMix::new(0.5, 0.25, 0.25))
        .with_seed(0xC0FFEE);
        config.adversaries =
            vec![crate::adversary::AdversarySpec::new("learning", 3).with_parameter(0.2)];
        let spec = ScenarioSpec::from_config(config.clone()).expect("valid config");
        let mut sim = Simulation::from_spec(&spec).unwrap();
        for _ in 0..40 {
            sim.step(spec.config().phases.training_temperature);
        }
        let snapshot = sim.snapshot(&spec);
        let policy = snapshot.state.adversary_policies[0]
            .as_ref()
            .expect("learning unit exports a policy");
        assert!(policy.updates > 0, "training must have updated the table");
        assert!(policy.q.iter().any(|&v| v != 0.0));

        let decoded = Snapshot::decode(&snapshot.encode()).expect("decodes");
        assert_eq!(
            decoded.state.adversary_policies,
            snapshot.state.adversary_policies
        );
        assert_eq!(decoded.state.offline_since, snapshot.state.offline_since);

        let mut frozen_config = config.clone();
        frozen_config.adversaries =
            vec![crate::adversary::AdversarySpec::new("learning", 3).with_parameter(0.0)];
        let frozen_spec = ScenarioSpec::from_config(frozen_config).expect("valid config");
        let fork = snapshot.with_spec(&frozen_spec);
        assert_eq!(
            fork.state.adversary_policies, snapshot.state.adversary_policies,
            "same-shape fork carries the trained policy"
        );

        let mut bare_config = config;
        bare_config.adversaries.clear();
        let bare_spec = ScenarioSpec::from_config(bare_config).expect("valid config");
        let dropped = snapshot.with_spec(&bare_spec);
        assert!(dropped.state.adversary_policies.is_empty());
    }

    #[test]
    fn mispaired_state_is_a_typed_mismatch() {
        let spec = quick_spec();
        let sim = Simulation::from_spec(&spec).unwrap();
        let mut snapshot = sim.snapshot(&spec);
        // Embed a spec with a different population: state no longer fits.
        let other = ScenarioSpec::from_config(
            SimulationConfig {
                population: 30,
                initial_articles: 10,
                phases: PhaseConfig {
                    training_steps: 60,
                    evaluation_steps: 40,
                    ..Default::default()
                },
                ..Default::default()
            }
            .with_seed(0xC0FFEE),
        )
        .unwrap();
        snapshot.spec_text = other.to_text();
        assert!(matches!(
            Simulation::resume_from(&snapshot),
            Err(SnapshotError::Mismatch(_))
        ));
    }
}
