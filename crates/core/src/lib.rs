//! # collabsim
//!
//! The simulation model and experiment harness of the collabsim
//! reproduction of *"Game Theoretical Analysis of Incentives for
//! Large-scale, Fully Decentralized Collaboration Networks"* (Bocek, Shann,
//! Hausheer, Stiller — IPDPS 2008).
//!
//! The crate assembles the substrates into the paper's Section-IV model:
//!
//! * a population of (by default) 100 peers connected by the
//!   [`collabsim_netsim`] substrate,
//! * every peer carrying the dual reputation of
//!   [`collabsim_reputation`] (`R_S` for sharing, `R_E` for editing/voting),
//! * rational peers learning with the tabular Q-learning of
//!   [`collabsim_rl`] (Boltzmann exploration, the paper's two-phase
//!   temperature schedule), while altruistic and irrational peers follow the
//!   fixed behaviours of [`collabsim_gametheory::behavior`],
//! * service differentiation applied (or not, for the baseline) when
//!   bandwidth is allocated, votes are weighted and edits are admitted,
//! * the utility functions `U_S`/`U_E` of
//!   [`collabsim_gametheory::utility`] providing the per-step rewards.
//!
//! The step loop itself is a composable pipeline: every sub-phase of a
//! simulation step (selection, sharing, downloads, editing/voting, utility,
//! learning, optional reputation propagation) is a
//! [`pipeline::StepPhase`] trait object operating on the shared
//! [`world::SimWorld`], so incentive schemes and future substrates plug in
//! without touching the loop.
//!
//! The top-level entry points are:
//!
//! * [`SimulationConfig`] / [`Simulation`] — configure and run one
//!   simulation (training phase + measured evaluation phase) and obtain a
//!   [`SimulationReport`],
//! * [`pipeline`] — the step-phase pipeline behind [`Simulation::step`],
//! * [`experiment`] — [`experiment::ScenarioGrid`] /
//!   [`experiment::ScenarioRunner`]: declarative parameter grids
//!   (mix × scheme × seed) executed on parallel worker threads, plus the
//!   sweeps that regenerate every figure of the paper (Figures 3–7) and
//!   the ablations,
//! * [`results`] — plain-text/CSV table rendering used by the
//!   figure-regeneration binaries in `collabsim-bench`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod action;
pub mod active;
pub mod adversary;
pub mod agent;
pub mod agent_table;
pub mod config;
pub mod engine;
pub mod experiment;
pub mod incentive;
pub mod invariants;
pub mod observer;
pub mod pipeline;
pub mod report;
pub mod results;
pub mod snapshot;
pub mod spec;
pub mod threads;
pub mod world;

pub use action::{CollabAction, EditBehavior, ShareLevel, ACTION_DIMS};
pub use active::{ActiveSets, PeerBitset};
pub use adversary::{
    AdversaryRegistry, AdversarySpec, AdversaryStrategy, AttackMetricsObserver, AttackStats,
    LearningAdversary, PeerPolicyState, PolicyState,
};
pub use agent::{AgentState, CollabAgent};
pub use agent_table::{AgentShardMut, AgentTable};
pub use config::{PhaseConfig, PropagationConfig, ReputationSource, SimulationConfig};
pub use engine::Simulation;
pub use experiment::{ScenarioGrid, ScenarioRunner};
pub use incentive::IncentiveScheme;
pub use invariants::{
    ActiveSetObserver, ArenaBoundObserver, ConservationObserver, ReputationBoundsObserver,
};
pub use observer::{StepObserver, TimingObserver, WorldView};
pub use pipeline::{PhaseRegistry, PhaseTimings, StepContext, StepPhase, StepPipeline};
pub use report::{BehaviorBreakdown, SimulationReport};
pub use snapshot::{DirStore, MemStore, RunStore, Snapshot, SnapshotError, WorldState};
pub use spec::{apply_defence, ScenarioSpec, ScenarioSpecBuilder, SpecError};
pub use world::{AccumulatorTable, ChurnStats, NetStats, PeerAccumulator, SimWorld, UploadMatrix};

// Re-export the pieces downstream users constantly need alongside the core
// API so examples only import one crate.
pub use collabsim_gametheory::behavior::{BehaviorMix, BehaviorType};
pub use collabsim_gametheory::utility::UtilityModel;
pub use collabsim_reputation::function::LogisticReputation;
