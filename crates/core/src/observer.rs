//! Step observers: streaming metrics without growing the report.
//!
//! A [`StepObserver`] receives callbacks at phase, step and run boundaries
//! with a read-only [`WorldView`] of the simulation state (the same
//! pattern as the reputation ledger's
//! [`LedgerView`]). Observers
//! are how benches and tests collect statistics the fixed
//! [`SimulationReport`] does not carry — per-step time series, churn
//! dynamics, phase timings — without every new metric growing the report
//! struct (which is pinned bit-for-bit by the golden test).
//!
//! Observation is passive by construction: callbacks get `&`-references
//! only, so attaching any number of observers can never change simulation
//! results. The built-in [`TimingObserver`] subsumes the older
//! [`PhaseTimings`] instrumentation through this interface.

use crate::pipeline::{PhaseTimings, StepContext};
use crate::report::SimulationReport;
use crate::world::{ChurnStats, SimWorld};
use collabsim_gametheory::behavior::BehaviorType;
use collabsim_netsim::article::ArticleRegistry;
use collabsim_netsim::peer::PeerRegistry;
use collabsim_reputation::sharded::LedgerView;
use std::time::Duration;

/// A read-only facade over [`SimWorld`] handed to observer callbacks.
///
/// Exposes the state observers typically aggregate; anything missing can
/// be reached through [`WorldView::world`], which hands out the whole
/// world immutably.
#[derive(Clone, Copy)]
pub struct WorldView<'a> {
    world: &'a SimWorld,
}

impl<'a> WorldView<'a> {
    /// Wraps a world.
    pub fn new(world: &'a SimWorld) -> Self {
        Self { world }
    }

    /// The whole world state, immutably.
    pub fn world(&self) -> &'a SimWorld {
        self.world
    }

    /// Number of peers (the arena size; includes departed identities).
    pub fn population(&self) -> usize {
        self.world.population()
    }

    /// The current simulation step.
    pub fn now(&self) -> u64 {
        self.world.clock.now()
    }

    /// Read facade over the reputation ledger.
    pub fn ledger(&self) -> LedgerView<'a> {
        self.world.ledger.view()
    }

    /// A peer's sharing reputation `R_S`.
    pub fn sharing_reputation(&self, peer: usize) -> f64 {
        self.world.ledger.sharing_reputation(peer)
    }

    /// A peer's editing reputation `R_E`.
    pub fn editing_reputation(&self, peer: usize) -> f64 {
        self.world.ledger.editing_reputation(peer)
    }

    /// A peer's behaviour type.
    pub fn behavior(&self, peer: usize) -> BehaviorType {
        self.world.behaviors[peer]
    }

    /// The peer registry (online flags, capacities, offers).
    pub fn peers(&self) -> &'a PeerRegistry {
        &self.world.peers
    }

    /// Number of peers currently online.
    pub fn online_count(&self) -> usize {
        self.world.peers.online().count()
    }

    /// The article registry (quality, edit history).
    pub fn articles(&self) -> &'a ArticleRegistry {
        &self.world.articles
    }

    /// Running churn counters.
    pub fn churn_stats(&self) -> ChurnStats {
        self.world.churn_stats
    }

    /// Whether the measured evaluation phase is active.
    pub fn measuring(&self) -> bool {
        self.world.measuring
    }
}

impl std::fmt::Debug for WorldView<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorldView")
            .field("now", &self.now())
            .field("population", &self.population())
            .field("online", &self.online_count())
            .finish()
    }
}

/// Callbacks at phase, step and run boundaries of a simulation.
///
/// All callback methods default to no-ops, so an observer implements only
/// the boundaries it cares about (plus the [`StepObserver::as_any`]
/// boilerplate that lets callers recover the concrete observer after a
/// run). Attach observers with
/// [`Simulation::add_observer`](crate::engine::Simulation::add_observer);
/// they fire in attachment order.
pub trait StepObserver: Send + std::any::Any {
    /// The observer as [`Any`](std::any::Any), so
    /// [`Simulation::observer`](crate::engine::Simulation::observer) can
    /// downcast it back to the concrete type after a run. Implement as
    /// `fn as_any(&self) -> &dyn std::any::Any { self }`.
    fn as_any(&self) -> &dyn std::any::Any;

    /// Called once when a full protocol run starts (before any step).
    fn on_run_start(&mut self, _world: WorldView<'_>) {}

    /// Called after every phase with the phase's name and wall-clock time.
    fn on_phase(
        &mut self,
        _phase: &str,
        _elapsed: Duration,
        _world: WorldView<'_>,
        _ctx: &StepContext,
    ) {
    }

    /// Called after the last phase of every step.
    fn on_step_end(&mut self, _world: WorldView<'_>, _ctx: &StepContext) {}

    /// Called once when a full protocol run finishes, with the report.
    fn on_run_end(&mut self, _world: WorldView<'_>, _report: &SimulationReport) {}
}

/// An observer accumulating per-phase wall-clock totals — the
/// [`PhaseTimings`] instrumentation expressed through the observer
/// interface, for callers that want timings without touching the engine's
/// built-in context instrumentation.
#[derive(Debug, Default)]
pub struct TimingObserver {
    timings: PhaseTimings,
    /// Interned copies of non-builtin phase names (`PhaseTimings` keys by
    /// `&'static str`, so custom names are leaked — exactly once each,
    /// through this memo).
    interned: Vec<&'static str>,
}

impl TimingObserver {
    /// A fresh (enabled) timing observer.
    pub fn new() -> Self {
        let mut timings = PhaseTimings::default();
        timings.enable();
        Self {
            timings,
            interned: Vec::new(),
        }
    }

    /// The accumulated totals.
    pub fn timings(&self) -> &PhaseTimings {
        &self.timings
    }
}

impl StepObserver for TimingObserver {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn on_phase(
        &mut self,
        phase: &str,
        elapsed: Duration,
        _world: WorldView<'_>,
        _ctx: &StepContext,
    ) {
        // PhaseTimings keys entries by `&'static str`; the observer
        // interface hands out `&str`, so built-in names map to their
        // static literals and custom names are leaked once each (the memo
        // makes repeat calls hit the interned copy, not a fresh leak).
        let name: &'static str = match phase {
            "selection" => "selection",
            "sharing" => "sharing",
            "download" => "download",
            "edit-vote" => "edit-vote",
            "utility" => "utility",
            "learning" => "learning",
            "propagation" => "propagation",
            "churn" => "churn",
            other => match self.interned.iter().find(|n| **n == other) {
                Some(&interned) => interned,
                None => {
                    let interned: &'static str = Box::leak(other.to_string().into_boxed_str());
                    self.interned.push(interned);
                    interned
                }
            },
        };
        self.timings.record(name, elapsed);
    }
}

/// An observer recording a per-step churn/population time series — the
/// data behind the re-entry reputation-persistence statistics of the churn
/// bench.
#[derive(Debug, Default)]
pub struct ChurnTimelineObserver {
    steps: Vec<ChurnTimelinePoint>,
}

/// One step's churn observation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnTimelinePoint {
    /// The simulation step.
    pub now: u64,
    /// Peers online after the step.
    pub online: usize,
    /// Cumulative churn counters after the step.
    pub stats: ChurnStats,
}

impl ChurnTimelineObserver {
    /// A fresh timeline observer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The recorded time series, one point per step.
    pub fn timeline(&self) -> &[ChurnTimelinePoint] {
        &self.steps
    }
}

impl StepObserver for ChurnTimelineObserver {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn on_step_end(&mut self, world: WorldView<'_>, _ctx: &StepContext) {
        self.steps.push(ChurnTimelinePoint {
            now: world.now(),
            online: world.online_count(),
            stats: world.churn_stats(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{PhaseConfig, SimulationConfig};
    use crate::engine::Simulation;

    fn quick_config() -> SimulationConfig {
        SimulationConfig {
            population: 10,
            initial_articles: 5,
            phases: PhaseConfig {
                training_steps: 30,
                evaluation_steps: 20,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    /// Counts every callback and checks the view is coherent.
    #[derive(Default)]
    struct CountingObserver {
        run_starts: usize,
        phases: usize,
        steps: usize,
        run_ends: usize,
        last_online: usize,
    }

    impl StepObserver for CountingObserver {
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn on_run_start(&mut self, world: WorldView<'_>) {
            self.run_starts += 1;
            assert_eq!(world.now(), 0);
        }
        fn on_phase(
            &mut self,
            phase: &str,
            _elapsed: Duration,
            world: WorldView<'_>,
            ctx: &StepContext,
        ) {
            self.phases += 1;
            assert!(!phase.is_empty());
            assert_eq!(ctx.now, world.now());
        }
        fn on_step_end(&mut self, world: WorldView<'_>, _ctx: &StepContext) {
            self.steps += 1;
            self.last_online = world.online_count();
        }
        fn on_run_end(&mut self, world: WorldView<'_>, report: &SimulationReport) {
            self.run_ends += 1;
            assert_eq!(report.evaluation_steps, 20);
            assert_eq!(world.population(), 10);
        }
    }

    #[test]
    fn observers_fire_at_every_boundary() {
        let mut sim = Simulation::new(quick_config());
        sim.add_observer(CountingObserver::default());
        let report = sim.run();
        let observer: &CountingObserver = sim.observer(0).expect("attached above");
        assert_eq!(observer.run_starts, 1);
        assert_eq!(observer.run_ends, 1);
        assert_eq!(observer.steps, 50, "training + evaluation steps");
        assert_eq!(observer.phases, 50 * sim.pipeline().len());
        assert_eq!(observer.last_online, 10);
        assert_eq!(report.evaluation_steps, 20);
    }

    #[test]
    fn observation_is_passive() {
        let baseline = Simulation::new(quick_config()).run();
        let mut observed = Simulation::new(quick_config());
        observed.add_observer(CountingObserver::default());
        observed.add_observer(TimingObserver::new());
        observed.add_observer(ChurnTimelineObserver::new());
        assert_eq!(
            observed.run(),
            baseline,
            "observers must not change results"
        );
    }

    #[test]
    fn timing_observer_subsumes_phase_timings() {
        let mut sim = Simulation::new(quick_config());
        sim.add_observer(TimingObserver::new());
        sim.run();
        let timings: &TimingObserver = sim.observer(0).expect("attached above");
        let names: Vec<&str> = timings
            .timings()
            .totals()
            .iter()
            .map(|&(n, _, _)| n)
            .collect();
        assert_eq!(names, sim.pipeline().phase_names());
        assert!(timings
            .timings()
            .totals()
            .iter()
            .all(|&(_, _, count)| count == 50));
    }

    #[test]
    fn churn_timeline_records_every_step() {
        let mut sim = Simulation::new(quick_config());
        sim.add_observer(ChurnTimelineObserver::new());
        sim.run();
        let timeline: &ChurnTimelineObserver = sim.observer(0).expect("attached above");
        assert_eq!(timeline.timeline().len(), 50);
        assert!(timeline
            .timeline()
            .iter()
            .all(|point| point.online == 10 && point.stats.total_events() == 0));
    }
}
