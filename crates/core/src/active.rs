//! Active-set tracking: packed bitsets over the peer population.
//!
//! The per-step pipeline must not pay for peers that cannot do anything.
//! At the million-peer tier most of the per-step cost of the naive loops is
//! pointer-chasing `world.peers.peer(PeerId(p)).online` for peers that are
//! offline or fixed-behaviour; [`ActiveSets`] replaces those lookups with
//! two packed bitsets maintained incrementally at the only places peer
//! liveness changes — [`SimWorld::depart_peer`], [`SimWorld::rejoin_peer`]
//! and [`SimWorld::whitewash_peer`](crate::world::SimWorld::whitewash_peer):
//!
//! * `online` — peers currently online. Selection, sharing, download
//!   collection, utility, learning and the edit-delta loop iterate this set
//!   (in ascending peer order, which is what the RNG-stream contract
//!   requires) instead of scanning the whole population.
//! * `learners` — peers with [`BehaviorType::Rational`]. Behaviour never
//!   changes after construction (whitewashing resets a peer's *identity*,
//!   not its agent), so this set is static; the learning phase iterates the
//!   intersection `online ∧ learners`.
//!
//! Pending-transfer state intentionally stays in the dense
//! `active_transfer: Vec<Option<u64>>` on the world: it has a single O(1)
//! consumer per peer per event and no per-step scan, so a bitset would add
//! maintenance without removing any work.
//!
//! [`SimWorld::depart_peer`]: crate::world::SimWorld::depart_peer
//! [`SimWorld::rejoin_peer`]: crate::world::SimWorld::rejoin_peer

use collabsim_gametheory::behavior::BehaviorType;
use collabsim_netsim::peer::PeerRegistry;
use serde::{Deserialize, Serialize};

/// A fixed-capacity packed bitset over peer indices.
///
/// Iteration yields members in ascending order — the order every
/// deterministic per-peer loop in the pipeline uses — and costs
/// `O(population / 64 + members)` rather than `O(population)` struct loads.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PeerBitset {
    words: Vec<u64>,
    len: usize,
}

impl PeerBitset {
    /// Creates an empty bitset with capacity for `len` peers.
    pub fn new(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Creates a bitset with every bit below `len` set.
    pub fn full(len: usize) -> Self {
        let mut set = Self::new(len);
        for word in &mut set.words {
            *word = u64::MAX;
        }
        set.trim_tail();
        set
    }

    /// Number of peer slots (capacity, not membership count).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bitset has zero capacity.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Clears bits above `len` in the last word so `count` stays exact.
    fn trim_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Membership test.
    #[inline]
    pub fn get(&self, index: usize) -> bool {
        debug_assert!(index < self.len, "peer index out of range");
        self.words[index / 64] & (1u64 << (index % 64)) != 0
    }

    /// Inserts `index`.
    #[inline]
    pub fn set(&mut self, index: usize) {
        debug_assert!(index < self.len, "peer index out of range");
        self.words[index / 64] |= 1u64 << (index % 64);
    }

    /// Removes `index`.
    #[inline]
    pub fn clear(&mut self, index: usize) {
        debug_assert!(index < self.len, "peer index out of range");
        self.words[index / 64] &= !(1u64 << (index % 64));
    }

    /// Number of members.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of 64-bit words backing the set.
    pub fn word_count(&self) -> usize {
        self.words.len()
    }

    /// The `i`-th backing word (bit `b` = peer `i * 64 + b`). Lets loops
    /// that must mutate the world per member iterate without holding a
    /// borrow on the bitset across the loop body (the download collect
    /// stage), as long as the body does not change the set itself.
    #[inline]
    pub fn word(&self, i: usize) -> u64 {
        self.words[i]
    }

    /// Iterates members in ascending order.
    pub fn iter(&self) -> BitsetIter<'_> {
        BitsetIter {
            words: &self.words,
            word_index: 0,
            current: self.words.first().copied().unwrap_or(0),
            end: self.len,
        }
    }

    /// Iterates members of `self ∧ other` in ascending order.
    ///
    /// # Panics
    ///
    /// Panics if the two bitsets have different capacities.
    pub fn iter_and<'a>(&'a self, other: &'a PeerBitset) -> AndIter<'a> {
        assert_eq!(self.len, other.len, "bitset capacities differ");
        AndIter {
            a: &self.words,
            b: &other.words,
            word_index: 0,
            current: match (self.words.first(), other.words.first()) {
                (Some(&x), Some(&y)) => x & y,
                _ => 0,
            },
            end: self.len,
        }
    }

    /// Iterates members within `range` (ascending). Used by the sharded
    /// phases, whose workers own contiguous peer ranges.
    pub fn iter_range(&self, range: std::ops::Range<usize>) -> RangeIter<'_> {
        let start = range.start.min(self.len);
        let end = range.end.min(self.len);
        let word_index = start / 64;
        let mut current = self.words.get(word_index).copied().unwrap_or(0);
        // Mask off bits below the range start in the first word.
        current &= !0u64 << (start % 64);
        RangeIter {
            words: &self.words,
            word_index,
            current,
            end,
        }
    }
}

/// Ascending iterator over a [`PeerBitset`].
#[derive(Debug)]
pub struct BitsetIter<'a> {
    words: &'a [u64],
    word_index: usize,
    current: u64,
    end: usize,
}

impl Iterator for BitsetIter<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                let index = self.word_index * 64 + bit;
                return (index < self.end).then_some(index);
            }
            self.word_index += 1;
            self.current = *self.words.get(self.word_index)?;
        }
    }
}

/// Ascending iterator over the intersection of two [`PeerBitset`]s.
#[derive(Debug)]
pub struct AndIter<'a> {
    a: &'a [u64],
    b: &'a [u64],
    word_index: usize,
    current: u64,
    end: usize,
}

impl Iterator for AndIter<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                let index = self.word_index * 64 + bit;
                return (index < self.end).then_some(index);
            }
            self.word_index += 1;
            self.current = self.a.get(self.word_index)? & self.b.get(self.word_index)?;
        }
    }
}

/// Ascending iterator over a sub-range of a [`PeerBitset`].
#[derive(Debug)]
pub struct RangeIter<'a> {
    words: &'a [u64],
    word_index: usize,
    current: u64,
    end: usize,
}

impl Iterator for RangeIter<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                let index = self.word_index * 64 + bit;
                return (index < self.end).then_some(index);
            }
            self.word_index += 1;
            if self.word_index * 64 >= self.end {
                return None;
            }
            self.current = *self.words.get(self.word_index)?;
        }
    }
}

/// The incremental active sets the pipeline iterates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActiveSets {
    online: PeerBitset,
    learners: PeerBitset,
}

impl ActiveSets {
    /// Builds the sets for a freshly constructed world: every peer online,
    /// learners taken from the (immutable) behaviour assignment.
    pub fn new(behaviors: &[BehaviorType]) -> Self {
        let mut learners = PeerBitset::new(behaviors.len());
        for (p, behavior) in behaviors.iter().enumerate() {
            if *behavior == BehaviorType::Rational {
                learners.set(p);
            }
        }
        Self {
            online: PeerBitset::full(behaviors.len()),
            learners,
        }
    }

    /// The online-peer bitset.
    #[inline]
    pub fn online(&self) -> &PeerBitset {
        &self.online
    }

    /// O(1) online test — replaces `world.peers.peer(PeerId(p)).online` in
    /// the hot loops.
    #[inline]
    pub fn is_online(&self, peer: usize) -> bool {
        self.online.get(peer)
    }

    /// Marks a peer online. Called from the world's rejoin path only.
    pub fn set_online(&mut self, peer: usize) {
        self.online.set(peer);
    }

    /// Marks a peer offline. Called from the world's departure path only.
    pub fn set_offline(&mut self, peer: usize) {
        self.online.clear(peer);
    }

    /// Ascending iterator over online peers.
    pub fn iter_online(&self) -> BitsetIter<'_> {
        self.online.iter()
    }

    /// Ascending iterator over online rational learners — the exact member
    /// set of the learning phase.
    pub fn iter_online_learners(&self) -> AndIter<'_> {
        self.online.iter_and(&self.learners)
    }

    /// Whether the sets match a from-scratch recomputation against the
    /// ground-truth registry and behaviour assignment. Used by the
    /// active-set invariant tests after every churn/adversary event.
    pub fn matches(&self, peers: &PeerRegistry, behaviors: &[BehaviorType]) -> bool {
        let recomputed = Self::recompute(peers, behaviors);
        *self == recomputed
    }

    /// Recomputes the sets from scratch (test oracle).
    pub fn recompute(peers: &PeerRegistry, behaviors: &[BehaviorType]) -> Self {
        let mut sets = Self::new(behaviors);
        for peer in peers.iter() {
            if !peer.online {
                sets.online.clear(peer.id.index());
            }
        }
        sets
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use collabsim_netsim::peer::PeerId;

    #[test]
    fn empty_and_full_counts() {
        assert_eq!(PeerBitset::new(0).count(), 0);
        assert_eq!(PeerBitset::new(100).count(), 0);
        assert_eq!(PeerBitset::full(100).count(), 100);
        assert_eq!(PeerBitset::full(64).count(), 64);
        assert_eq!(PeerBitset::full(65).count(), 65);
        assert!(PeerBitset::new(0).is_empty());
        assert!(!PeerBitset::new(1).is_empty());
    }

    #[test]
    fn set_clear_get_roundtrip() {
        let mut set = PeerBitset::new(130);
        for i in [0, 1, 63, 64, 65, 127, 128, 129] {
            assert!(!set.get(i));
            set.set(i);
            assert!(set.get(i));
        }
        assert_eq!(set.count(), 8);
        set.clear(64);
        assert!(!set.get(64));
        assert_eq!(set.count(), 7);
    }

    #[test]
    fn iter_is_ascending_and_complete() {
        let mut set = PeerBitset::new(200);
        let members = [0usize, 5, 63, 64, 100, 198, 199];
        for &m in &members {
            set.set(m);
        }
        let collected: Vec<usize> = set.iter().collect();
        assert_eq!(collected, members);
    }

    #[test]
    fn iter_and_is_intersection() {
        let mut a = PeerBitset::new(150);
        let mut b = PeerBitset::new(150);
        for i in (0..150).step_by(2) {
            a.set(i);
        }
        for i in (0..150).step_by(3) {
            b.set(i);
        }
        let both: Vec<usize> = a.iter_and(&b).collect();
        let expected: Vec<usize> = (0..150).step_by(6).collect();
        assert_eq!(both, expected);
    }

    #[test]
    fn iter_range_respects_bounds() {
        let set = PeerBitset::full(200);
        let collected: Vec<usize> = set.iter_range(63..130).collect();
        let expected: Vec<usize> = (63..130).collect();
        assert_eq!(collected, expected);
        assert_eq!(set.iter_range(0..0).count(), 0);
        assert_eq!(set.iter_range(190..400).count(), 10);
    }

    #[test]
    fn iter_range_on_sparse_set() {
        let mut set = PeerBitset::new(300);
        for &m in &[10usize, 64, 70, 128, 200, 299] {
            set.set(m);
        }
        let collected: Vec<usize> = set.iter_range(64..201).collect();
        assert_eq!(collected, vec![64, 70, 128, 200]);
    }

    #[test]
    fn active_sets_track_behaviors_and_online() {
        let behaviors = [
            BehaviorType::Rational,
            BehaviorType::Altruistic,
            BehaviorType::Rational,
            BehaviorType::Irrational,
        ];
        let mut sets = ActiveSets::new(&behaviors);
        assert_eq!(sets.iter_online().count(), 4);
        assert_eq!(sets.iter_online_learners().collect::<Vec<_>>(), vec![0, 2]);
        sets.set_offline(2);
        assert!(!sets.is_online(2));
        assert_eq!(sets.iter_online_learners().collect::<Vec<_>>(), vec![0]);
        sets.set_online(2);
        assert_eq!(sets.iter_online_learners().collect::<Vec<_>>(), vec![0, 2]);
    }

    #[test]
    fn recompute_matches_registry_ground_truth() {
        let behaviors = vec![BehaviorType::Rational; 10];
        let mut peers = PeerRegistry::with_population(10);
        let mut sets = ActiveSets::new(&behaviors);
        assert!(sets.matches(&peers, &behaviors));
        peers.set_online(PeerId(3), false);
        assert!(!sets.matches(&peers, &behaviors));
        sets.set_offline(3);
        assert!(sets.matches(&peers, &behaviors));
    }
}
