//! The simulation engine: the paper's Section-IV model as a phase
//! pipeline.
//!
//! One [`Simulation`] couples the whole network state
//! ([`SimWorld`]: peers, articles, reputation
//! ledger, learners) with a [`StepPipeline`] of
//! [`StepPhase`](crate::pipeline::StepPhase)s, and advances it through the
//! two phases of the paper's protocol:
//!
//! 1. a **training phase** (10 000 steps by default) in which the Boltzmann
//!    temperature is effectively infinite so every rational agent explores
//!    its 27 actions uniformly and "no agent will have a degenerated
//!    Q-Matrix",
//! 2. a **reputation reset** ("the reputation values are reset but the
//!    agents keep their Q-Matrices"), followed by
//! 3. a measured **evaluation phase** at temperature 1 whose per-step
//!    observations produce the [`SimulationReport`].
//!
//! Every step executes the standard pipeline: action selection → sharing →
//! downloads (with bandwidth allocated by the configured incentive scheme) →
//! editing and voting (gated, weighted and punished by the scheme) →
//! utility computation → Q-learning updates — plus the optional
//! reputation-propagation phase when a backend is configured. Custom phases
//! plug in through [`Simulation::with_pipeline`].

use crate::adversary::AdversaryRegistry;
use crate::config::SimulationConfig;
use crate::observer::{StepObserver, WorldView};
use crate::pipeline::{PhaseRegistry, PhaseTimings, StepContext, StepPipeline};
use crate::report::SimulationReport;
use crate::snapshot::{RunStore, Snapshot, SnapshotError};
use crate::spec::{ScenarioSpec, SpecError};
use crate::world::SimWorld;
use collabsim_gametheory::behavior::BehaviorType;
use collabsim_netsim::article::ArticleRegistry;
use collabsim_reputation::propagation::GlobalReputation;
use collabsim_reputation::sharded::ShardedLedger;

pub use crate::world::{ARTICLE_CONTRIBUTION_UNITS, BANDWIDTH_CONTRIBUTION_UNITS};

use crate::agent_table::AgentTable;

/// The full simulation: world state plus the step pipeline advancing it.
///
/// The simulation owns one [`StepContext`] that every step reuses (cleared
/// in place), so steady-state stepping performs no per-step scratch
/// allocation.
pub struct Simulation {
    world: SimWorld,
    pipeline: StepPipeline,
    ctx: StepContext,
    observers: Vec<Box<dyn StepObserver>>,
}

impl Simulation {
    /// Builds the initial network state from a configuration, with the
    /// standard Section-IV pipeline.
    pub fn new(config: SimulationConfig) -> Self {
        let pipeline = StepPipeline::standard(&config);
        Self::with_pipeline(config, pipeline)
    }

    /// Builds a simulation from a [`ScenarioSpec`]: the spec's phase list
    /// is resolved against the standard [`PhaseRegistry`]. A spec whose
    /// phase list is the default order for its configuration behaves
    /// exactly like [`Simulation::new`] on the same configuration.
    pub fn from_spec(spec: &ScenarioSpec) -> Result<Self, SpecError> {
        Self::from_spec_with_registry(spec, &PhaseRegistry::standard())
    }

    /// Builds a simulation from a spec, resolving phase names against a
    /// caller-supplied registry (which may contain custom phases).
    /// Adversary specs resolve against the standard
    /// [`AdversaryRegistry`]; use
    /// [`Simulation::from_spec_with_registries`] for custom strategies.
    pub fn from_spec_with_registry(
        spec: &ScenarioSpec,
        registry: &PhaseRegistry,
    ) -> Result<Self, SpecError> {
        Self::from_spec_with_registries(spec, registry, &AdversaryRegistry::standard())
    }

    /// Builds a simulation from a spec, resolving phase names *and*
    /// adversary strategy names against caller-supplied registries — the
    /// fully pluggable entry point: a custom attack is a registered
    /// [`AdversaryStrategy`](crate::adversary::AdversaryStrategy) plus a
    /// spec naming it, never an engine edit.
    pub fn from_spec_with_registries(
        spec: &ScenarioSpec,
        registry: &PhaseRegistry,
        adversary_registry: &AdversaryRegistry,
    ) -> Result<Self, SpecError> {
        let pipeline = spec.build_pipeline_with(registry)?;
        let world = SimWorld::with_adversary_registry(spec.config().clone(), adversary_registry)?;
        let ctx = StepContext::new(world.population(), 0.0, 0);
        Ok(Self {
            world,
            pipeline,
            ctx,
            observers: Vec::new(),
        })
    }

    /// Builds a simulation with a custom step pipeline (e.g. extra
    /// instrumentation phases, or a reordered protocol for ablations).
    ///
    /// Note that the golden determinism guarantees only cover the standard
    /// pipeline: phases drawing from the step RNG in a different order
    /// produce a different (still seed-deterministic) trajectory.
    pub fn with_pipeline(config: SimulationConfig, pipeline: StepPipeline) -> Self {
        let world = SimWorld::new(config);
        let ctx = StepContext::new(world.population(), 0.0, 0);
        Self {
            world,
            pipeline,
            ctx,
            observers: Vec::new(),
        }
    }

    /// Attaches a [`StepObserver`]; observers fire in attachment order at
    /// phase, step and run boundaries. Observation is read-only and can
    /// never change simulation results.
    pub fn add_observer(&mut self, observer: impl StepObserver + 'static) -> &mut Self {
        self.observers.push(Box::new(observer));
        self
    }

    /// The `index`-th attached observer, downcast to its concrete type
    /// (`None` if the index is out of range or the type does not match).
    pub fn observer<O: StepObserver>(&self, index: usize) -> Option<&O> {
        self.observers.get(index)?.as_any().downcast_ref::<O>()
    }

    /// Number of attached observers.
    pub fn observer_count(&self) -> usize {
        self.observers.len()
    }

    /// The configuration the simulation was built from.
    pub fn config(&self) -> &SimulationConfig {
        &self.world.config
    }

    /// The step pipeline (phase names, length).
    pub fn pipeline(&self) -> &StepPipeline {
        &self.pipeline
    }

    /// Read access to the full world state (e.g. for custom analyses).
    pub fn world(&self) -> &SimWorld {
        &self.world
    }

    /// Mutable access to the world state, for harnesses that inject state
    /// between runs — the arms-race trainer uses this to hand a resumed
    /// episode the policy its learning adversary reached in the previous
    /// one. Mutating mid-run state voids the determinism contract; inject
    /// before the first [`Simulation::step`].
    pub fn world_mut(&mut self) -> &mut SimWorld {
        &mut self.world
    }

    /// Read access to the (sharded) reputation ledger.
    pub fn ledger(&self) -> &ShardedLedger {
        &self.world.ledger
    }

    /// Turns on per-phase wall-clock instrumentation; totals accumulate
    /// over every subsequent step and are read via
    /// [`Simulation::phase_timings`]. Pure observation — results are
    /// unaffected.
    pub fn enable_phase_timings(&mut self) {
        self.ctx.timings.enable();
    }

    /// The per-phase wall-clock totals recorded so far.
    pub fn phase_timings(&self) -> &PhaseTimings {
        &self.ctx.timings
    }

    /// Read access to the article registry.
    pub fn articles(&self) -> &ArticleRegistry {
        &self.world.articles
    }

    /// Read access to the struct-of-arrays agent table.
    pub fn agents(&self) -> &AgentTable {
        &self.world.agents
    }

    /// Behaviour type of a peer.
    pub fn behavior(&self, peer: usize) -> BehaviorType {
        self.world.behaviors[peer]
    }

    /// Current simulation step.
    pub fn now(&self) -> u64 {
        self.world.clock.now()
    }

    /// The latest globally propagated reputation vector, if the
    /// propagation phase is enabled and has run.
    pub fn global_reputation(&self) -> Option<&GlobalReputation> {
        self.world.global_reputation.as_ref()
    }

    /// Runs the full protocol (training, reset, measured evaluation) and
    /// returns the report.
    pub fn run(&mut self) -> SimulationReport {
        for observer in &mut self.observers {
            observer.on_run_start(WorldView::new(&self.world));
        }
        self.run_training();
        self.reset_for_evaluation();
        let report = self.run_evaluation();
        for observer in &mut self.observers {
            observer.on_run_end(WorldView::new(&self.world), &report);
        }
        report
    }

    /// Runs only the training phase (uniform exploration, unmeasured).
    pub fn run_training(&mut self) {
        let temperature = self.world.config.phases.training_temperature;
        for _ in 0..self.world.config.phases.training_steps {
            self.step(temperature);
        }
    }

    /// The phase switch: reputation values are reset, Q-matrices are kept.
    pub fn reset_for_evaluation(&mut self) {
        self.world.reset_for_evaluation();
    }

    /// Runs the measured evaluation phase and builds the report.
    pub fn run_evaluation(&mut self) -> SimulationReport {
        let temperature = self.world.config.phases.evaluation_temperature;
        for _ in 0..self.world.config.phases.evaluation_steps {
            self.step(temperature);
            self.world.evaluation_steps_run += 1;
        }
        self.world.build_report()
    }

    /// Advances the simulation by a single step at the given Boltzmann
    /// temperature, executing every pipeline phase in order on the reused
    /// step context (with observer callbacks at phase and step boundaries).
    pub fn step(&mut self, temperature: f64) {
        self.pipeline.run_step_observed(
            &mut self.world,
            temperature,
            &mut self.ctx,
            &mut self.observers,
        );
    }

    /// Captures a checkpoint of the current state. `spec` must be the
    /// scenario spec this simulation was built from — the simulation does
    /// not retain it, and the snapshot embeds its exact text so resuming is
    /// self-contained. Call only at step boundaries (never from inside a
    /// phase or observer callback).
    pub fn snapshot(&self, spec: &ScenarioSpec) -> Snapshot {
        Snapshot::capture(&self.world, spec)
    }

    /// Rebuilds a simulation from a checkpoint: the embedded spec
    /// reconstructs the pipeline and all derived machinery, then the
    /// captured state overwrites the world exactly. The returned simulation
    /// continues the checkpointed trajectory bit for bit — drive it with
    /// [`Simulation::finish`] (or manual [`Simulation::step`] calls).
    pub fn resume_from(snapshot: &Snapshot) -> Result<Self, SnapshotError> {
        Self::resume_with_registries(
            snapshot,
            &PhaseRegistry::standard(),
            &AdversaryRegistry::standard(),
        )
    }

    /// [`Simulation::resume_from`] with phase and adversary names resolved
    /// against caller-supplied registries (for snapshots of runs that used
    /// custom phases or strategies).
    pub fn resume_with_registries(
        snapshot: &Snapshot,
        registry: &PhaseRegistry,
        adversary_registry: &AdversaryRegistry,
    ) -> Result<Self, SnapshotError> {
        let spec = ScenarioSpec::parse(&snapshot.spec_text)
            .map_err(|error| SnapshotError::Spec(error.to_string()))?;
        let mut sim = Self::from_spec_with_registries(&spec, registry, adversary_registry)
            .map_err(|error| SnapshotError::Spec(error.to_string()))?;
        snapshot.apply(&mut sim.world)?;
        Ok(sim)
    }

    /// Runs the rest of the protocol from the current position — however
    /// far a resumed checkpoint got — and returns the report. On a fresh
    /// simulation this is exactly [`Simulation::run`]; on a resumed one it
    /// finishes the remaining training steps, performs the reputation reset
    /// if it has not happened yet, and runs the remaining evaluation steps.
    pub fn finish(&mut self) -> SimulationReport {
        for observer in &mut self.observers {
            observer.on_run_start(WorldView::new(&self.world));
        }
        if !self.world.measuring {
            let temperature = self.world.config.phases.training_temperature;
            while self.world.clock.now() < self.world.config.phases.training_steps {
                self.step(temperature);
            }
            self.reset_for_evaluation();
        }
        let temperature = self.world.config.phases.evaluation_temperature;
        while self.world.evaluation_steps_run < self.world.config.phases.evaluation_steps {
            self.step(temperature);
            self.world.evaluation_steps_run += 1;
        }
        let report = self.world.build_report();
        for observer in &mut self.observers {
            observer.on_run_end(WorldView::new(&self.world), &report);
        }
        report
    }

    /// Steps left before [`Simulation::finish`] would return: the
    /// unfinished tail of the training phase (zero once measurement has
    /// begun) plus the unfinished tail of the evaluation phase. On a fresh
    /// simulation this equals the configured total; on a resumed one it is
    /// what the resume still has to pay.
    pub fn remaining_steps(&self) -> u64 {
        let phases = &self.world.config.phases;
        let training = if self.world.measuring {
            0
        } else {
            phases.training_steps.saturating_sub(self.world.clock.now())
        };
        training
            + phases
                .evaluation_steps
                .saturating_sub(self.world.evaluation_steps_run)
    }

    /// [`Simulation::run`] with a checkpoint written to `store` every
    /// `every` global steps (training and evaluation alike, always at step
    /// boundaries). Returns the report and the store keys written, in
    /// chronological order. Checkpointing is pure observation — the report
    /// is bit-identical to an uncheckpointed [`Simulation::run`].
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero.
    pub fn run_with_checkpoints(
        &mut self,
        spec: &ScenarioSpec,
        every: u64,
        store: &mut dyn RunStore,
    ) -> Result<(SimulationReport, Vec<String>), SnapshotError> {
        assert!(every > 0, "checkpoint interval must be at least 1 step");
        let mut keys = Vec::new();
        for observer in &mut self.observers {
            observer.on_run_start(WorldView::new(&self.world));
        }
        let temperature = self.world.config.phases.training_temperature;
        while self.world.clock.now() < self.world.config.phases.training_steps {
            self.step(temperature);
            if self.world.clock.now() % every == 0 {
                keys.push(store.put(&self.snapshot(spec))?);
            }
        }
        self.reset_for_evaluation();
        let temperature = self.world.config.phases.evaluation_temperature;
        while self.world.evaluation_steps_run < self.world.config.phases.evaluation_steps {
            self.step(temperature);
            self.world.evaluation_steps_run += 1;
            if self.world.clock.now() % every == 0 {
                keys.push(store.put(&self.snapshot(spec))?);
            }
        }
        let report = self.world.build_report();
        for observer in &mut self.observers {
            observer.on_run_end(WorldView::new(&self.world), &report);
        }
        Ok((report, keys))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PhaseConfig;
    use crate::incentive::IncentiveScheme;
    use collabsim_gametheory::behavior::BehaviorMix;
    use collabsim_reputation::propagation::PropagationScheme;

    fn quick_config() -> SimulationConfig {
        SimulationConfig {
            population: 20,
            initial_articles: 10,
            phases: PhaseConfig {
                training_steps: 120,
                evaluation_steps: 80,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn construction_assigns_behaviors_according_to_mix() {
        let config = quick_config().with_mix(BehaviorMix::new(0.5, 0.25, 0.25));
        let sim = Simulation::new(config);
        let rational = (0..20)
            .filter(|&p| sim.behavior(p) == BehaviorType::Rational)
            .count();
        let altruistic = (0..20)
            .filter(|&p| sim.behavior(p) == BehaviorType::Altruistic)
            .count();
        assert_eq!(rational, 10);
        assert_eq!(altruistic, 5);
        assert_eq!(sim.now(), 0);
        assert_eq!(sim.articles().article_count(), 10);
    }

    #[test]
    fn standard_pipeline_delegates_to_the_protocol_phases() {
        let sim = Simulation::new(quick_config());
        assert_eq!(
            sim.pipeline().phase_names(),
            vec![
                "selection",
                "sharing",
                "download",
                "edit-vote",
                "utility",
                "learning"
            ]
        );
        assert!(
            sim.pipeline().len() >= 5,
            "step must delegate to ≥ 5 phases"
        );
    }

    #[test]
    fn newcomer_reputation_equals_configured_minimum() {
        let sim = Simulation::new(quick_config());
        for p in 0..20 {
            assert!((sim.ledger().sharing_reputation(p) - 0.05).abs() < 1e-9);
        }
    }

    #[test]
    fn run_produces_consistent_report() {
        let mut sim = Simulation::new(quick_config());
        let report = sim.run();
        assert_eq!(report.evaluation_steps, 80);
        assert!(report.shared_bandwidth >= 0.0 && report.shared_bandwidth <= 1.0);
        assert!(report.shared_articles >= 0.0 && report.shared_articles <= 1.0);
        assert!(report.mean_article_quality > 0.0 && report.mean_article_quality <= 1.0);
        let rational = report.breakdown(BehaviorType::Rational);
        assert_eq!(rational.peers, 20);
        assert!(rational.shared_bandwidth >= 0.0);
    }

    #[test]
    fn altruistic_population_shares_everything() {
        let config = quick_config().with_mix(BehaviorMix::new(0.0, 1.0, 0.0));
        let mut sim = Simulation::new(config);
        let report = sim.run();
        assert!((report.shared_bandwidth - 1.0).abs() < 1e-9);
        assert!((report.shared_articles - 1.0).abs() < 1e-9);
        let alt = report.breakdown(BehaviorType::Altruistic);
        assert_eq!(alt.constructive_edit_fraction(), 1.0);
        assert_eq!(alt.destructive_edits, 0);
    }

    #[test]
    fn irrational_population_shares_nothing() {
        let config = quick_config().with_mix(BehaviorMix::new(0.0, 0.0, 1.0));
        let mut sim = Simulation::new(config);
        let report = sim.run();
        assert_eq!(report.shared_bandwidth, 0.0);
        assert_eq!(report.shared_articles, 0.0);
        let irr = report.breakdown(BehaviorType::Irrational);
        assert_eq!(irr.constructive_edits, 0);
        // Irrational peers stay at the minimum reputation forever.
        assert!((irr.final_sharing_reputation - 0.05).abs() < 1e-9);
    }

    #[test]
    fn same_seed_reproduces_identical_reports() {
        let config = quick_config().with_seed(123);
        let a = Simulation::new(config.clone()).run();
        let b = Simulation::new(config).run();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Simulation::new(quick_config().with_seed(1)).run();
        let b = Simulation::new(quick_config().with_seed(2)).run();
        assert_ne!(a, b);
    }

    #[test]
    fn reputation_reset_keeps_q_matrices() {
        let mut sim = Simulation::new(quick_config());
        sim.run_training();
        let updates_before = sim.agents().total_updates();
        assert!(updates_before > 0);
        // Sharing reputation has moved away from the minimum during training.
        let any_above_min = (0..20).any(|p| sim.ledger().sharing_reputation(p) > 0.06);
        assert!(any_above_min);
        sim.reset_for_evaluation();
        for p in 0..20 {
            assert!((sim.ledger().sharing_reputation(p) - 0.05).abs() < 1e-9);
        }
        let updates_after = sim.agents().total_updates();
        assert_eq!(updates_before, updates_after, "Q-matrices must be kept");
    }

    #[test]
    fn sharing_raises_reputation_of_altruistic_peers_during_run() {
        let config = quick_config().with_mix(BehaviorMix::new(0.0, 0.5, 0.5));
        let mut sim = Simulation::new(config);
        let report = sim.run();
        let alt = report.breakdown(BehaviorType::Altruistic);
        let irr = report.breakdown(BehaviorType::Irrational);
        assert!(
            alt.final_sharing_reputation > irr.final_sharing_reputation,
            "altruists {} should out-rank free-riders {}",
            alt.final_sharing_reputation,
            irr.final_sharing_reputation
        );
    }

    #[test]
    fn altruistic_peers_download_more_than_freeriders_under_incentive() {
        let config = quick_config()
            .with_mix(BehaviorMix::new(0.0, 0.5, 0.5))
            .with_incentive(IncentiveScheme::ReputationBased);
        let mut sim = Simulation::new(config);
        let report = sim.run();
        let alt = report.breakdown(BehaviorType::Altruistic);
        let irr = report.breakdown(BehaviorType::Irrational);
        assert!(
            alt.downloaded > irr.downloaded,
            "altruists {} vs free-riders {}",
            alt.downloaded,
            irr.downloaded
        );
    }

    #[test]
    fn without_incentive_downloads_are_not_differentiated() {
        let config = quick_config()
            .with_mix(BehaviorMix::new(0.0, 0.5, 0.5))
            .with_incentive(IncentiveScheme::None);
        let mut sim = Simulation::new(config);
        let report = sim.run();
        let alt = report.breakdown(BehaviorType::Altruistic);
        let irr = report.breakdown(BehaviorType::Irrational);
        // Free-riders still download (equal split); the gap between types is
        // much smaller than under the incentive scheme.
        assert!(irr.downloaded > 0.0);
        let gap = (alt.downloaded - irr.downloaded).abs();
        assert!(
            gap < alt.downloaded.max(irr.downloaded),
            "gap {gap} suspiciously large for the no-incentive baseline"
        );
    }

    #[test]
    fn edits_are_decided_and_counted() {
        let config = quick_config().with_mix(BehaviorMix::new(0.0, 0.7, 0.3));
        let mut sim = Simulation::new(config);
        let report = sim.run();
        assert!(report.edit_outcomes.decided() > 0, "no edits were decided");
        // With an altruistic majority, constructive edits dominate and are
        // mostly accepted while destructive ones are mostly declined.
        assert!(report.constructive_acceptance_rate() > report.destructive_acceptance_rate());
    }

    #[test]
    fn transfer_arena_stays_bounded_over_a_run() {
        // The free list recycles finished transfers, so the arena is
        // bounded by concurrent downloads (≤ 1 per peer) instead of
        // growing by one slot per download over the whole run.
        let mut sim = Simulation::new(quick_config());
        sim.run();
        let transfers = &sim.world().transfers;
        assert!(transfers.completed_count() > 0, "downloads must complete");
        assert!(
            transfers.slot_count() <= sim.world().population(),
            "arena grew past the population: {} slots",
            transfers.slot_count()
        );
    }

    #[test]
    fn step_can_be_driven_manually() {
        let mut sim = Simulation::new(quick_config());
        sim.step(1.0);
        sim.step(1.0);
        assert_eq!(sim.now(), 2);
    }

    #[test]
    fn phase_timings_accumulate_across_steps_when_enabled() {
        let mut sim = Simulation::new(quick_config());
        sim.step(1.0);
        assert!(
            sim.phase_timings().totals().is_empty(),
            "off by default — timing is opt-in"
        );
        sim.enable_phase_timings();
        sim.step(1.0);
        sim.step(1.0);
        let totals = sim.phase_timings().totals();
        assert_eq!(totals.len(), sim.pipeline().len());
        assert!(totals.iter().all(|&(_, _, count)| count == 2));
    }

    #[test]
    fn forced_sharding_and_threading_do_not_change_results() {
        let base = quick_config()
            .with_mix(BehaviorMix::new(0.4, 0.3, 0.3))
            .with_seed(7);
        let plain = Simulation::new(base.clone()).run();
        let sharded = Simulation::new(base.with_ledger_shards(5).with_intra_step_threads(3)).run();
        assert_eq!(plain, sharded);
    }

    #[test]
    fn propagation_phase_produces_a_global_reputation_vector() {
        let config = quick_config()
            .with_mix(BehaviorMix::new(0.0, 0.5, 0.5))
            .with_propagation(PropagationScheme::EigenTrust, 25);
        let mut sim = Simulation::new(config);
        assert_eq!(sim.pipeline().len(), 7);
        assert_eq!(sim.pipeline().phase_names().last(), Some(&"propagation"));
        assert!(sim.global_reputation().is_none());
        let report = sim.run();
        let global = sim
            .global_reputation()
            .expect("propagation ran during the simulation");
        assert_eq!(global.values.len(), 20);
        assert!(global.values.iter().all(|v| v.is_finite() && *v >= 0.0));
        // 200 steps at interval 25 → 8 runs.
        assert_eq!(sim.world().propagation_runs, 8);
        // Altruists (upload everything) must out-rank free-riders globally.
        let mean = |ty: BehaviorType| {
            let peers: Vec<usize> = (0..20).filter(|&p| sim.behavior(p) == ty).collect();
            let sum: f64 = peers.iter().map(|&p| global.values[p]).sum();
            sum / peers.len() as f64
        };
        assert!(
            mean(BehaviorType::Altruistic) > mean(BehaviorType::Irrational),
            "propagated reputation must reflect upload behaviour"
        );
        assert!(report.evaluation_steps == 80);
    }

    #[test]
    fn propagated_reputation_source_changes_service_decisions() {
        // Feeding service differentiation from the propagation backend's
        // output (instead of the globally visible ledger) must change the
        // trajectory once the first propagation round has run — and stay
        // seed-deterministic.
        let base = quick_config()
            .with_mix(BehaviorMix::new(0.4, 0.3, 0.3))
            .with_seed(11)
            .with_propagation(PropagationScheme::EigenTrust, 25);
        let ledger_fed = Simulation::new(base.clone()).run();
        let mut sim = Simulation::new(base.clone().with_propagated_reputation());
        let propagated_fed = sim.run();
        assert_ne!(
            ledger_fed, propagated_fed,
            "propagated reputation must actually feed service decisions"
        );
        assert!(sim.world().propagated_service_reputation.is_some());
        let values = sim.world().propagated_service_reputation.as_ref().unwrap();
        let r_min = sim.config().min_reputation;
        assert!(values
            .iter()
            .all(|&v| (r_min - 1e-12..=1.0 + 1e-12).contains(&v)));
        let again = Simulation::new(base.with_propagated_reputation()).run();
        assert_eq!(propagated_fed, again, "seed-deterministic");
    }

    #[test]
    fn propagation_does_not_perturb_the_core_dynamics() {
        // Same seed, propagation on vs off: the report must be identical
        // because the propagation phase only reads the upload history and
        // draws from its own RNG stream.
        let base = quick_config()
            .with_mix(BehaviorMix::new(0.4, 0.3, 0.3))
            .with_seed(99);
        let without = Simulation::new(base.clone()).run();
        let with = Simulation::new(base.with_propagation(PropagationScheme::Gossip, 50)).run();
        assert_eq!(without, with);
    }
}
