//! The simulation engine: the paper's Section-IV model, step by step.
//!
//! One [`Simulation`] owns the whole network state — peers, articles,
//! reputation ledger, learners — and advances it through the two phases of
//! the paper's protocol:
//!
//! 1. a **training phase** (10 000 steps by default) in which the Boltzmann
//!    temperature is effectively infinite so every rational agent explores
//!    its 27 actions uniformly and "no agent will have a degenerated
//!    Q-Matrix",
//! 2. a **reputation reset** ("the reputation values are reset but the
//!    agents keep their Q-Matrices"), followed by
//! 3. a measured **evaluation phase** at temperature 1 whose per-step
//!    observations produce the [`SimulationReport`].
//!
//! Every step executes the same sub-phases: action selection → sharing →
//! downloads (with bandwidth allocated by the configured incentive scheme) →
//! editing and voting (gated, weighted and punished by the scheme) →
//! utility computation → Q-learning updates.

use crate::action::{CollabAction, EditBehavior};
use crate::agent::{AgentState, CollabAgent};
use crate::config::{DownloadRate, SimulationConfig};
use crate::report::{BehaviorBreakdown, SimulationReport};
use collabsim_gametheory::behavior::BehaviorType;
use collabsim_gametheory::utility::{EditingObservation, SharingObservation};
use collabsim_netsim::article::{ArticleId, ArticleRegistry, EditKind};
use collabsim_netsim::bandwidth::{BandwidthAllocator, DownloadRequest};
use collabsim_netsim::clock::SimClock;
use collabsim_netsim::dht::{Dht, DhtKey};
use collabsim_netsim::peer::{PeerId, PeerRegistry};
use collabsim_netsim::storage::ArticleStore;
use collabsim_netsim::transfer::{TransferManager, TransferStatus};
use collabsim_reputation::contribution::{EditingAction, SharingAction};
use collabsim_reputation::function::LogisticReputation;
use collabsim_reputation::ledger::ReputationLedger;
use collabsim_reputation::service::ServiceDifferentiation;
use collabsim_rl::space::StateSpace;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::collections::HashMap;
use std::sync::Arc;

/// Contribution units corresponding to sharing the full 100-article storage
/// (`S_articles` in the paper's `C_S` formula). Together with the default
/// weights `α_S = 1`, `β_S = 2` this puts a full sharer of both resources
/// at `C_S = 24` — high on the Figure 1 logistic curve but not saturated, so
/// each additional resource class still visibly raises the reputation.
pub const ARTICLE_CONTRIBUTION_UNITS: f64 = 12.0;

/// Contribution units corresponding to sharing the full upload bandwidth
/// (`S_bandwidth` in the paper's `C_S` formula).
pub const BANDWIDTH_CONTRIBUTION_UNITS: f64 = 6.0;

/// Per-peer accumulators filled during the measured evaluation phase.
#[derive(Debug, Clone, Default)]
struct PeerAccumulator {
    shared_bandwidth_sum: f64,
    shared_articles_sum: f64,
    downloaded_sum: f64,
    utility_sum: f64,
    constructive_edits: u64,
    destructive_edits: u64,
    votes: u64,
    steps: u64,
}

/// The full simulation state.
pub struct Simulation {
    config: SimulationConfig,
    clock: SimClock,
    peers: PeerRegistry,
    articles: ArticleRegistry,
    store: ArticleStore,
    dht: Dht,
    ledger: ReputationLedger,
    service: ServiceDifferentiation,
    allocator: BandwidthAllocator,
    transfers: TransferManager,
    agents: Vec<CollabAgent>,
    behaviors: Vec<BehaviorType>,
    states: StateSpace,
    rng: StdRng,
    /// `uploads[u][v]`: total bandwidth peer `u` has uploaded to peer `v`
    /// (the direct-relation history the tit-for-tat baseline needs).
    uploads: Vec<Vec<f64>>,
    /// In-flight download per peer (transfer id into [`TransferManager`]).
    active_transfer: Vec<Option<u64>>,
    /// Accepted edits since the peer's last punishment (for restoring
    /// voting rights).
    accepted_since_punishment: Vec<u32>,
    accumulators: Vec<PeerAccumulator>,
    measuring: bool,
    evaluation_steps_run: u64,
    downloads_completed_in_evaluation: usize,
    edit_outcome_baseline: collabsim_netsim::article::EditOutcomeCounts,
}

impl Simulation {
    /// Builds the initial network state from a configuration.
    pub fn new(config: SimulationConfig) -> Self {
        config.validate();
        let mut rng = StdRng::seed_from_u64(config.seed);
        let population = config.population;

        let peers = PeerRegistry::with_population(population);
        let states = StateSpace::new(config.reputation_states);

        // Behaviour assignment: deterministic largest-remainder rounding of
        // the configured mix, then a seeded shuffle so types are not
        // clustered by index.
        let mut behaviors = config.mix.assign(population);
        behaviors.shuffle(&mut rng);

        let agents: Vec<CollabAgent> = behaviors
            .iter()
            .map(|&b| CollabAgent::new(b, states, config.learning))
            .collect();

        let reputation_fn = Arc::new(LogisticReputation::new(
            (1.0 - config.min_reputation) / config.min_reputation,
            config.reputation_beta,
        ));
        let ledger = ReputationLedger::new(
            population,
            config.contribution,
            reputation_fn.clone(),
            reputation_fn,
        );
        let service = ServiceDifferentiation::new(config.service, config.min_reputation);
        let allocator = BandwidthAllocator::new(config.incentive.allocation_policy());

        // Seed the article base: initial articles created by random peers,
        // replicated onto the DHT-closest peers.
        let mut articles = ArticleRegistry::new();
        let mut store = ArticleStore::new();
        let mut dht = Dht::new(3);
        for p in 0..population {
            dht.join(PeerId(p as u32));
        }
        for _ in 0..config.initial_articles {
            let creator = PeerId(rng.gen_range(0..population as u32));
            let id = articles.create_article(creator, 0);
            store.add_replica(creator, id);
            let key = DhtKey::for_article(id.0);
            for holder in dht.store(key) {
                store.add_replica(holder, id);
            }
        }

        Self {
            clock: SimClock::new(),
            peers,
            articles,
            store,
            dht,
            ledger,
            service,
            allocator,
            transfers: TransferManager::new(),
            agents,
            behaviors,
            states,
            uploads: vec![vec![0.0; population]; population],
            active_transfer: vec![None; population],
            accepted_since_punishment: vec![0; population],
            accumulators: vec![PeerAccumulator::default(); population],
            measuring: false,
            evaluation_steps_run: 0,
            downloads_completed_in_evaluation: 0,
            edit_outcome_baseline: Default::default(),
            rng,
            config,
        }
    }

    /// The configuration the simulation was built from.
    pub fn config(&self) -> &SimulationConfig {
        &self.config
    }

    /// Read access to the reputation ledger (e.g. for custom analyses).
    pub fn ledger(&self) -> &ReputationLedger {
        &self.ledger
    }

    /// Read access to the article registry.
    pub fn articles(&self) -> &ArticleRegistry {
        &self.articles
    }

    /// Read access to the agents.
    pub fn agents(&self) -> &[CollabAgent] {
        &self.agents
    }

    /// Behaviour type of a peer.
    pub fn behavior(&self, peer: usize) -> BehaviorType {
        self.behaviors[peer]
    }

    /// Current simulation step.
    pub fn now(&self) -> u64 {
        self.clock.now()
    }

    /// Runs the full protocol (training, reset, measured evaluation) and
    /// returns the report.
    pub fn run(&mut self) -> SimulationReport {
        self.run_training();
        self.reset_for_evaluation();
        self.run_evaluation()
    }

    /// Runs only the training phase (uniform exploration, unmeasured).
    pub fn run_training(&mut self) {
        let temperature = self.config.phases.training_temperature;
        for _ in 0..self.config.phases.training_steps {
            self.step(temperature);
        }
    }

    /// The phase switch: reputation values are reset, Q-matrices are kept.
    pub fn reset_for_evaluation(&mut self) {
        self.ledger.reset_all_contributions();
        self.accumulators = vec![PeerAccumulator::default(); self.config.population];
        self.edit_outcome_baseline = self.articles.edit_outcome_counts();
        let completed_before = self.transfers.completed_count();
        self.downloads_completed_in_evaluation = completed_before;
        self.measuring = true;
        self.evaluation_steps_run = 0;
    }

    /// Runs the measured evaluation phase and builds the report.
    pub fn run_evaluation(&mut self) -> SimulationReport {
        let temperature = self.config.phases.evaluation_temperature;
        for _ in 0..self.config.phases.evaluation_steps {
            self.step(temperature);
            self.evaluation_steps_run += 1;
        }
        self.build_report()
    }

    /// Advances the simulation by a single step at the given Boltzmann
    /// temperature.
    pub fn step(&mut self, temperature: f64) {
        let now = self.clock.tick();
        let population = self.config.population;

        // --- 1. Action selection -----------------------------------------
        let current_states: Vec<AgentState> = (0..population)
            .map(|p| self.agent_state(p))
            .collect();
        let mut actions: Vec<CollabAction> = Vec::with_capacity(population);
        for p in 0..population {
            let action = self.agents[p].choose(current_states[p], temperature, &mut self.rng);
            actions.push(action);
        }

        // --- 2. Apply sharing decisions -----------------------------------
        for p in 0..population {
            let action = actions[p];
            let id = PeerId(p as u32);
            let peer = self.peers.peer_mut(id);
            peer.set_shared_upload_fraction(action.bandwidth.fraction());
            peer.set_shared_articles(action.articles.article_count());
            let held = self.store.held_count(id);
            let offered = (action.articles.fraction() * held as f64).round() as usize;
            self.store.set_offered_count(id, offered);

            // Contribution accounting. The paper leaves the units of
            // S_articles and S_bandwidth open; we scale both so that sharing
            // everything sits at C_S = 24 (R ≈ 0.87 on the Figure 1 logistic
            // curve with β = 0.2), a single fully shared resource at C_S = 12
            // (R ≈ 0.35) and free-riding at C_S = 0 (R = 0.05) — giving the
            // Q-learner a visible reputation gradient across participation
            // levels and across resource classes (see DESIGN.md).
            self.ledger.record_sharing(
                p,
                &SharingAction {
                    shared_articles: action.articles.fraction() * ARTICLE_CONTRIBUTION_UNITS,
                    shared_bandwidth: action.bandwidth.fraction() * BANDWIDTH_CONTRIBUTION_UNITS,
                },
            );
        }

        // --- 3. Downloads --------------------------------------------------
        let sharing_peers = self.peers.sharing_peers();
        let download_probability = match self.config.download_probability {
            DownloadRate::Fixed(p) => p,
            DownloadRate::InverseSharers => {
                if sharing_peers.is_empty() {
                    0.0
                } else {
                    1.0 / sharing_peers.len() as f64
                }
            }
        };

        // Download sources must actually offer upload bandwidth this step:
        // the paper's competition is over "the source's upload bandwidth",
        // so a peer offering only stored articles cannot serve a transfer.
        let upload_sources: Vec<PeerId> = sharing_peers
            .iter()
            .copied()
            .filter(|&s| self.peers.peer(s).offered_upload() > 0.0)
            .collect();

        // Collect download requests per source.
        let mut requests_by_source: HashMap<PeerId, Vec<DownloadRequest>> = HashMap::new();
        let mut request_transfer: HashMap<(PeerId, PeerId), u64> = HashMap::new();
        for p in 0..population {
            let downloader = PeerId(p as u32);
            // Continue an in-flight transfer if its source still offers
            // bandwidth; otherwise abandon it and look for a new source.
            let mut source: Option<PeerId> = None;
            if let Some(tid) = self.active_transfer[p] {
                let t = self.transfers.transfer(tid);
                if t.status == TransferStatus::InProgress
                    && self.peers.peer(t.source).offered_upload() > 0.0
                {
                    source = Some(t.source);
                    request_transfer.insert((downloader, t.source), tid);
                } else {
                    if t.status == TransferStatus::InProgress {
                        self.transfers.cancel(tid, now);
                    }
                    self.active_transfer[p] = None;
                }
            }
            // Otherwise maybe start a new download.
            if source.is_none()
                && !upload_sources.is_empty()
                && download_probability > 0.0
                && self.rng.gen_bool(download_probability.min(1.0))
            {
                let candidates: Vec<PeerId> = upload_sources
                    .iter()
                    .copied()
                    .filter(|&s| s != downloader)
                    .collect();
                if let Some(&chosen) = candidates.choose(&mut self.rng) {
                    let article = self.pick_article_to_download(downloader, chosen);
                    let tid = self.transfers.start(downloader, chosen, article, now);
                    self.active_transfer[p] = Some(tid);
                    request_transfer.insert((downloader, chosen), tid);
                    source = Some(chosen);
                }
            }
            if let Some(src) = source {
                requests_by_source.entry(src).or_default().push(DownloadRequest {
                    downloader,
                    sharing_reputation: self.ledger.sharing_reputation(p),
                    download_capacity: self.peers.peer(downloader).download_capacity,
                    uploaded_to_source: self.uploads[p][src.index()],
                });
            }
        }

        // Allocate each source's offered upload among its downloaders.
        let mut downloaded_this_step = vec![0.0f64; population];
        let mut source_upload_seen = vec![0.0f64; population];
        let mut bandwidth_share = vec![0.0f64; population];
        let mut sources: Vec<PeerId> = requests_by_source.keys().copied().collect();
        sources.sort_unstable();
        for source in sources {
            let requests = &requests_by_source[&source];
            let offered = self.peers.peer(source).offered_upload();
            let allocations = self.allocator.allocate(offered, requests);
            for allocation in allocations {
                let d = allocation.downloader.index();
                downloaded_this_step[d] += allocation.bandwidth;
                source_upload_seen[d] = self
                    .peers
                    .peer(source)
                    .shared_upload_fraction
                    .max(source_upload_seen[d]);
                bandwidth_share[d] = bandwidth_share[d].max(allocation.share);
                self.uploads[source.index()][d] += allocation.bandwidth;
                if let Some(&tid) = request_transfer.get(&(allocation.downloader, source)) {
                    let status = self.transfers.apply_grant(tid, allocation.bandwidth, now);
                    if status == TransferStatus::Completed {
                        self.active_transfer[d] = None;
                        let article = self.transfers.transfer(tid).article;
                        self.store.add_replica(allocation.downloader, article);
                        self.dht
                            .add_holder(DhtKey::for_article(article.0), allocation.downloader);
                    }
                }
            }
        }

        // --- 4. Editing and voting ------------------------------------------
        let mut successful_votes = vec![0u32; population];
        let mut accepted_edits = vec![0u32; population];
        let mut attempted_editing = vec![false; population];
        let mut voted_this_step = vec![false; population];
        for p in 0..population {
            let behavior = actions[p].edit;
            if !behavior.participates() {
                continue;
            }
            if !self.rng.gen_bool(self.config.edit_probability) {
                continue;
            }
            let editor = PeerId(p as u32);
            // A punished editor regains its editing right once its sharing
            // reputation has been rebuilt above the threshold θ — the paper's
            // punishment *is* the reputation reset, so the gate below is what
            // actually keeps the peer out until it contributes again.
            if !self.ledger.can_edit(p)
                && self.ledger.sharing_reputation(p) >= self.config.service.edit_threshold
            {
                self.ledger.restore_editing_rights(p);
            }
            if !self.ledger.can_edit(p) {
                continue;
            }
            if self.config.incentive.gated_editing()
                && !self.service.may_edit(self.ledger.sharing_reputation(p))
            {
                continue;
            }
            let editable = self.articles.editable_articles();
            let Some(&article_id) = editable.choose(&mut self.rng) else {
                continue;
            };
            let kind = match behavior {
                EditBehavior::Constructive => EditKind::Constructive,
                EditBehavior::Destructive => EditKind::Destructive,
                EditBehavior::Abstain => unreachable!("abstainers skipped above"),
            };
            let Some(edit_id) = self.articles.submit_edit(article_id, editor, kind, now) else {
                continue;
            };
            attempted_editing[p] = true;

            // --- The vote -------------------------------------------------
            // Voter pool: either the Section III-C2 design rule (previously
            // successful editors of this article) or the Section IV
            // simulation model (any peer may vote on any change), sampled
            // down to at most `max_voters_per_edit` voters.
            let mut eligible: Vec<PeerId> = if self.config.restrict_voters_to_editors {
                self.articles.article(article_id).eligible_voters(editor)
            } else {
                (0..population)
                    .map(|v| PeerId(v as u32))
                    .filter(|&v| v != editor)
                    .collect()
            };
            if eligible.len() > self.config.max_voters_per_edit {
                eligible.shuffle(&mut self.rng);
                eligible.truncate(self.config.max_voters_per_edit);
                eligible.sort_unstable();
            }
            let mut in_favor = 0.0f64;
            let mut against = 0.0f64;
            let mut favor_voters: Vec<usize> = Vec::new();
            let mut against_voters: Vec<usize> = Vec::new();
            let voter_reputations: Vec<f64> = eligible
                .iter()
                .map(|v| self.ledger.editing_reputation(v.index()))
                .collect();
            let powers = if self.config.incentive.weighted_voting() {
                self.service.voting_powers(&voter_reputations)
            } else {
                ServiceDifferentiation::equal_shares(eligible.len())
            };
            for (voter, &power) in eligible.iter().zip(powers.iter()) {
                let vi = voter.index();
                if self.config.incentive.punishes() && !self.ledger.can_vote(vi) {
                    continue;
                }
                // A voter's stance this step follows its own chosen edit
                // behaviour: constructive voters support quality, destructive
                // voters oppose it, abstainers stay silent.
                let stance = actions[vi].edit;
                if !stance.participates() {
                    continue;
                }
                voted_this_step[vi] = true;
                let supports_edit = match (stance, kind) {
                    (EditBehavior::Constructive, EditKind::Constructive) => true,
                    (EditBehavior::Constructive, EditKind::Destructive) => false,
                    (EditBehavior::Destructive, EditKind::Constructive) => false,
                    (EditBehavior::Destructive, EditKind::Destructive) => true,
                    (EditBehavior::Abstain, _) => unreachable!("abstainers skipped above"),
                };
                if supports_edit {
                    in_favor += power;
                    favor_voters.push(vi);
                } else {
                    against += power;
                    against_voters.push(vi);
                }
            }
            let accepted = if self.config.incentive.adaptive_majority() {
                self.service.edit_accepted(
                    self.ledger.editing_reputation(p),
                    in_favor,
                    against,
                )
            } else {
                in_favor + against > 0.0 && in_favor >= against
            };
            self.articles.resolve_edit(edit_id, accepted, now);

            // Editor outcome.
            if accepted {
                accepted_edits[p] += 1;
                self.accepted_since_punishment[p] += 1;
                if self.config.incentive.punishes() {
                    let since = self.accepted_since_punishment[p];
                    self.config.punishment.on_accepted_edit(
                        &mut self.ledger,
                        p,
                        since,
                        self.config.service.edit_threshold,
                    );
                }
            } else if self.config.incentive.punishes() {
                let outcome = self.config.punishment.on_declined_edit(&mut self.ledger, p);
                if outcome
                    == collabsim_reputation::punishment::PunishmentOutcome::EditingRightsRevoked
                {
                    self.accepted_since_punishment[p] = 0;
                }
            }

            // Voter outcomes: voters on the winning side cast a successful
            // vote, losers an unsuccessful one (punished under the scheme).
            let (winners, losers) = if accepted {
                (&favor_voters, &against_voters)
            } else {
                (&against_voters, &favor_voters)
            };
            for &w in winners {
                successful_votes[w] += 1;
            }
            if self.config.incentive.punishes() {
                for &l in losers.iter() {
                    self.config.punishment.on_unsuccessful_vote(&mut self.ledger, l);
                }
            }
        }

        // Editing/voting contribution accounting.
        for p in 0..population {
            self.ledger.record_editing(
                p,
                &EditingAction {
                    successful_votes: successful_votes[p],
                    accepted_edits: accepted_edits[p],
                    attempted: attempted_editing[p] || voted_this_step[p],
                },
            );
        }

        // --- 5. Rewards, learning, measurement ------------------------------
        for p in 0..population {
            let action = actions[p];
            let sharing_obs = SharingObservation {
                source_upload: source_upload_seen[p],
                bandwidth_share: bandwidth_share[p].min(1.0),
                disk_share: action.articles.fraction(),
                own_upload: action.bandwidth.fraction(),
            };
            let editing_obs = EditingObservation {
                successful_edits: accepted_edits[p],
                successful_votes: successful_votes[p],
            };
            let reward = self.config.utility.total_utility(&sharing_obs, &editing_obs);
            let next_state = self.agent_state(p);
            self.agents[p].learn(reward, next_state);

            if self.measuring {
                let acc = &mut self.accumulators[p];
                acc.shared_bandwidth_sum += action.bandwidth.fraction();
                acc.shared_articles_sum += action.articles.fraction();
                acc.downloaded_sum += downloaded_this_step[p];
                acc.utility_sum += reward;
                if attempted_editing[p] {
                    match action.edit {
                        EditBehavior::Constructive => acc.constructive_edits += 1,
                        EditBehavior::Destructive => acc.destructive_edits += 1,
                        EditBehavior::Abstain => {}
                    }
                }
                if voted_this_step[p] {
                    acc.votes += 1;
                }
                acc.steps += 1;
            }
        }
    }

    /// The agent's current state: its sharing-reputation bucket.
    fn agent_state(&self, peer: usize) -> AgentState {
        AgentState::from_reputation(
            self.ledger.sharing_reputation(peer),
            self.config.min_reputation,
            self.states,
        )
    }

    /// Picks the article a downloader will fetch from a source: preferably
    /// one offered by the source that the downloader does not yet hold,
    /// otherwise any article offered by the source, otherwise any article.
    fn pick_article_to_download(&mut self, downloader: PeerId, source: PeerId) -> ArticleId {
        let offered = self.store.offered_by(source);
        let missing: Vec<ArticleId> = offered
            .iter()
            .copied()
            .filter(|&a| !self.store.holds(downloader, a))
            .collect();
        if let Some(&a) = missing.choose(&mut self.rng) {
            return a;
        }
        if let Some(&a) = offered.choose(&mut self.rng) {
            return a;
        }
        // The source offers bandwidth but no specific article replica; fall
        // back to a random article of the registry (size-1 download of a
        // cached copy).
        let count = self.articles.article_count() as u32;
        if count == 0 {
            ArticleId(0)
        } else {
            ArticleId(self.rng.gen_range(0..count))
        }
    }

    /// Builds the report from the evaluation-phase accumulators.
    fn build_report(&self) -> SimulationReport {
        let population = self.config.population;
        let mut overall_bandwidth = 0.0;
        let mut overall_articles = 0.0;
        let mut total_steps = 0u64;

        let mut by_behavior: BTreeMap<String, BehaviorBreakdown> = BTreeMap::new();
        for behavior in BehaviorType::ALL {
            let peers_of_type: Vec<usize> = (0..population)
                .filter(|&p| self.behaviors[p] == behavior)
                .collect();
            if peers_of_type.is_empty() {
                continue;
            }
            let mut breakdown = BehaviorBreakdown {
                peers: peers_of_type.len(),
                ..Default::default()
            };
            let mut steps = 0u64;
            for &p in &peers_of_type {
                let acc = &self.accumulators[p];
                breakdown.shared_bandwidth += acc.shared_bandwidth_sum;
                breakdown.shared_articles += acc.shared_articles_sum;
                breakdown.downloaded += acc.downloaded_sum;
                breakdown.mean_utility += acc.utility_sum;
                breakdown.constructive_edits += acc.constructive_edits;
                breakdown.destructive_edits += acc.destructive_edits;
                breakdown.votes += acc.votes;
                breakdown.final_sharing_reputation += self.ledger.sharing_reputation(p);
                breakdown.final_editing_reputation += self.ledger.editing_reputation(p);
                steps += acc.steps;
                overall_bandwidth += acc.shared_bandwidth_sum;
                overall_articles += acc.shared_articles_sum;
                total_steps += acc.steps;
            }
            if steps > 0 {
                breakdown.shared_bandwidth /= steps as f64;
                breakdown.shared_articles /= steps as f64;
                breakdown.downloaded /= steps as f64;
                breakdown.mean_utility /= steps as f64;
            }
            breakdown.final_sharing_reputation /= peers_of_type.len() as f64;
            breakdown.final_editing_reputation /= peers_of_type.len() as f64;
            by_behavior.insert(behavior.label().to_string(), breakdown);
        }

        let (shared_bandwidth, shared_articles) = if total_steps > 0 {
            (
                overall_bandwidth / total_steps as f64,
                overall_articles / total_steps as f64,
            )
        } else {
            (0.0, 0.0)
        };

        // Edit outcomes accumulated during the evaluation phase only.
        let now_counts = self.articles.edit_outcome_counts();
        let base = self.edit_outcome_baseline;
        let edit_outcomes = collabsim_netsim::article::EditOutcomeCounts {
            accepted_constructive: now_counts.accepted_constructive - base.accepted_constructive,
            accepted_destructive: now_counts.accepted_destructive - base.accepted_destructive,
            declined_constructive: now_counts.declined_constructive - base.declined_constructive,
            declined_destructive: now_counts.declined_destructive - base.declined_destructive,
            pending: now_counts.pending,
        };

        SimulationReport {
            shared_bandwidth,
            shared_articles,
            by_behavior,
            edit_outcomes,
            mean_article_quality: self.articles.mean_quality(),
            completed_downloads: self.transfers.completed_count()
                - self.downloads_completed_in_evaluation,
            evaluation_steps: self.evaluation_steps_run,
            seed: self.config.seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PhaseConfig;
    use crate::incentive::IncentiveScheme;
    use collabsim_gametheory::behavior::BehaviorMix;

    fn quick_config() -> SimulationConfig {
        SimulationConfig {
            population: 20,
            initial_articles: 10,
            phases: PhaseConfig {
                training_steps: 120,
                evaluation_steps: 80,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn construction_assigns_behaviors_according_to_mix() {
        let config = quick_config().with_mix(BehaviorMix::new(0.5, 0.25, 0.25));
        let sim = Simulation::new(config);
        let rational = (0..20).filter(|&p| sim.behavior(p) == BehaviorType::Rational).count();
        let altruistic = (0..20)
            .filter(|&p| sim.behavior(p) == BehaviorType::Altruistic)
            .count();
        assert_eq!(rational, 10);
        assert_eq!(altruistic, 5);
        assert_eq!(sim.now(), 0);
        assert_eq!(sim.articles().article_count(), 10);
    }

    #[test]
    fn newcomer_reputation_equals_configured_minimum() {
        let sim = Simulation::new(quick_config());
        for p in 0..20 {
            assert!((sim.ledger().sharing_reputation(p) - 0.05).abs() < 1e-9);
        }
    }

    #[test]
    fn run_produces_consistent_report() {
        let mut sim = Simulation::new(quick_config());
        let report = sim.run();
        assert_eq!(report.evaluation_steps, 80);
        assert!(report.shared_bandwidth >= 0.0 && report.shared_bandwidth <= 1.0);
        assert!(report.shared_articles >= 0.0 && report.shared_articles <= 1.0);
        assert!(report.mean_article_quality > 0.0 && report.mean_article_quality <= 1.0);
        let rational = report.breakdown(BehaviorType::Rational);
        assert_eq!(rational.peers, 20);
        assert!(rational.shared_bandwidth >= 0.0);
    }

    #[test]
    fn altruistic_population_shares_everything() {
        let config = quick_config().with_mix(BehaviorMix::new(0.0, 1.0, 0.0));
        let mut sim = Simulation::new(config);
        let report = sim.run();
        assert!((report.shared_bandwidth - 1.0).abs() < 1e-9);
        assert!((report.shared_articles - 1.0).abs() < 1e-9);
        let alt = report.breakdown(BehaviorType::Altruistic);
        assert_eq!(alt.constructive_edit_fraction(), 1.0);
        assert_eq!(alt.destructive_edits, 0);
    }

    #[test]
    fn irrational_population_shares_nothing() {
        let config = quick_config().with_mix(BehaviorMix::new(0.0, 0.0, 1.0));
        let mut sim = Simulation::new(config);
        let report = sim.run();
        assert_eq!(report.shared_bandwidth, 0.0);
        assert_eq!(report.shared_articles, 0.0);
        let irr = report.breakdown(BehaviorType::Irrational);
        assert_eq!(irr.constructive_edits, 0);
        // Irrational peers stay at the minimum reputation forever.
        assert!((irr.final_sharing_reputation - 0.05).abs() < 1e-9);
    }

    #[test]
    fn same_seed_reproduces_identical_reports() {
        let config = quick_config().with_seed(123);
        let a = Simulation::new(config.clone()).run();
        let b = Simulation::new(config).run();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Simulation::new(quick_config().with_seed(1)).run();
        let b = Simulation::new(quick_config().with_seed(2)).run();
        assert_ne!(a, b);
    }

    #[test]
    fn reputation_reset_keeps_q_matrices() {
        let mut sim = Simulation::new(quick_config());
        sim.run_training();
        let updates_before: u64 = sim
            .agents()
            .iter()
            .filter_map(|a| a.learner())
            .map(|l| l.updates())
            .sum();
        assert!(updates_before > 0);
        // Sharing reputation has moved away from the minimum during training.
        let any_above_min = (0..20).any(|p| sim.ledger().sharing_reputation(p) > 0.06);
        assert!(any_above_min);
        sim.reset_for_evaluation();
        for p in 0..20 {
            assert!((sim.ledger().sharing_reputation(p) - 0.05).abs() < 1e-9);
        }
        let updates_after: u64 = sim
            .agents()
            .iter()
            .filter_map(|a| a.learner())
            .map(|l| l.updates())
            .sum();
        assert_eq!(updates_before, updates_after, "Q-matrices must be kept");
    }

    #[test]
    fn sharing_raises_reputation_of_altruistic_peers_during_run() {
        let config = quick_config().with_mix(BehaviorMix::new(0.0, 0.5, 0.5));
        let mut sim = Simulation::new(config);
        let report = sim.run();
        let alt = report.breakdown(BehaviorType::Altruistic);
        let irr = report.breakdown(BehaviorType::Irrational);
        assert!(
            alt.final_sharing_reputation > irr.final_sharing_reputation,
            "altruists {} should out-rank free-riders {}",
            alt.final_sharing_reputation,
            irr.final_sharing_reputation
        );
    }

    #[test]
    fn altruistic_peers_download_more_than_freeriders_under_incentive() {
        let config = quick_config()
            .with_mix(BehaviorMix::new(0.0, 0.5, 0.5))
            .with_incentive(IncentiveScheme::ReputationBased);
        let mut sim = Simulation::new(config);
        let report = sim.run();
        let alt = report.breakdown(BehaviorType::Altruistic);
        let irr = report.breakdown(BehaviorType::Irrational);
        assert!(
            alt.downloaded > irr.downloaded,
            "altruists {} vs free-riders {}",
            alt.downloaded,
            irr.downloaded
        );
    }

    #[test]
    fn without_incentive_downloads_are_not_differentiated() {
        let config = quick_config()
            .with_mix(BehaviorMix::new(0.0, 0.5, 0.5))
            .with_incentive(IncentiveScheme::None);
        let mut sim = Simulation::new(config);
        let report = sim.run();
        let alt = report.breakdown(BehaviorType::Altruistic);
        let irr = report.breakdown(BehaviorType::Irrational);
        // Free-riders still download (equal split); the gap between types is
        // much smaller than under the incentive scheme.
        assert!(irr.downloaded > 0.0);
        let gap = (alt.downloaded - irr.downloaded).abs();
        assert!(
            gap < alt.downloaded.max(irr.downloaded),
            "gap {gap} suspiciously large for the no-incentive baseline"
        );
    }

    #[test]
    fn edits_are_decided_and_counted() {
        let config = quick_config().with_mix(BehaviorMix::new(0.0, 0.7, 0.3));
        let mut sim = Simulation::new(config);
        let report = sim.run();
        assert!(report.edit_outcomes.decided() > 0, "no edits were decided");
        // With an altruistic majority, constructive edits dominate and are
        // mostly accepted while destructive ones are mostly declined.
        assert!(report.constructive_acceptance_rate() > report.destructive_acceptance_rate());
    }

    #[test]
    fn step_can_be_driven_manually() {
        let mut sim = Simulation::new(quick_config());
        sim.step(1.0);
        sim.step(1.0);
        assert_eq!(sim.now(), 2);
    }
}
