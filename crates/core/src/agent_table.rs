//! Struct-of-arrays agent storage.
//!
//! [`CollabAgent`](crate::agent::CollabAgent) is the readable reference
//! model of one agent: behaviour type, optional Q-learner, last choice.
//! Storing one such struct per peer is fine at paper scale but dominates
//! the step time at 10⁵+ peers — every selection/learning touch chases an
//! `Option<QLearningAgent>` box per peer. [`AgentTable`] holds the same
//! state as parallel dense arrays:
//!
//! * `behaviors[p]` — the peer's (immutable) behaviour type,
//! * one flat rank-major Q-matrix block per *rational* peer (`learner_rank`
//!   maps peer → block; ranks are assigned in ascending peer order, so a
//!   contiguous peer range owns a contiguous Q range and the learning phase
//!   can hand disjoint `&mut` shards to scoped workers),
//! * `last_state`/`last_action` sentinel-encoded per peer (the delayed
//!   Q-update's transition source).
//!
//! Every operation is bit-for-bit identical to the corresponding
//! [`CollabAgent`](crate::agent::CollabAgent) call — the
//! `soa_storage_prop` property test pins the two against each other over
//! random churn/adversary traces.

use crate::action::CollabAction;
use collabsim_gametheory::behavior::BehaviorType;
use collabsim_rl::qlearning::QLearningParams;
use collabsim_rl::space::StateSpace;

const NO_STATE: u32 = u32::MAX;
const NO_ACTION: u8 = u8::MAX;

/// Struct-of-arrays storage for the whole agent population.
#[derive(Debug, Clone)]
pub struct AgentTable {
    behaviors: Vec<BehaviorType>,
    /// Prefix counts of rational peers: `learner_rank[p]` is the number of
    /// rational peers with id `< p` (length `population + 1`). For a
    /// rational peer this is its Q-block rank.
    learner_rank: Vec<u32>,
    params: QLearningParams,
    states: usize,
    actions: usize,
    /// Rank-major flat Q-values: `learner_count × states × actions`.
    q: Vec<f64>,
    /// Q-update count per learner rank.
    updates: Vec<u64>,
    /// Last `choose` state bucket per peer ([`NO_STATE`] before the first).
    last_state: Vec<u32>,
    /// Last `choose` action index per peer ([`NO_ACTION`] before the first).
    last_action: Vec<u8>,
}

impl AgentTable {
    /// Builds the table for a behaviour assignment; rational peers get a
    /// Q-block over `states × 27` actions initialised to
    /// `params.initial_q`, like
    /// [`CollabAgent::new`](crate::agent::CollabAgent::new).
    ///
    /// # Panics
    ///
    /// Panics on invalid `params` when the population contains at least one
    /// rational peer (matching the per-agent construction it replaces).
    pub fn new(behaviors: &[BehaviorType], states: StateSpace, params: QLearningParams) -> Self {
        let mut learner_rank = Vec::with_capacity(behaviors.len() + 1);
        let mut rank = 0u32;
        for behavior in behaviors {
            learner_rank.push(rank);
            if *behavior == BehaviorType::Rational {
                rank += 1;
            }
        }
        learner_rank.push(rank);
        if rank > 0 {
            params.validate();
        }
        let states = states.len();
        let actions = CollabAction::action_space().len();
        Self {
            behaviors: behaviors.to_vec(),
            learner_rank,
            params,
            states,
            actions,
            q: vec![params.initial_q; rank as usize * states * actions],
            updates: vec![0; rank as usize],
            last_state: vec![NO_STATE; behaviors.len()],
            last_action: vec![NO_ACTION; behaviors.len()],
        }
    }

    /// Number of peers.
    pub fn population(&self) -> usize {
        self.behaviors.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.behaviors.is_empty()
    }

    /// Number of rational (learning) peers.
    pub fn learner_count(&self) -> usize {
        *self.learner_rank.last().expect("prefix is never empty") as usize
    }

    /// The peer's behaviour type.
    #[inline]
    pub fn behavior(&self, peer: usize) -> BehaviorType {
        self.behaviors[peer]
    }

    /// Whether the peer learns (i.e. is rational).
    #[inline]
    pub fn is_learning(&self, peer: usize) -> bool {
        self.behaviors[peer] == BehaviorType::Rational
    }

    /// The shared Q-learning hyper-parameters.
    pub fn params(&self) -> &QLearningParams {
        &self.params
    }

    /// Number of reputation-bucket states per Q-block.
    pub fn state_count(&self) -> usize {
        self.states
    }

    /// Number of actions per Q-row.
    pub fn action_count(&self) -> usize {
        self.actions
    }

    #[inline]
    fn block_start(&self, peer: usize) -> usize {
        debug_assert!(self.is_learning(peer), "peer {peer} has no Q-block");
        self.learner_rank[peer] as usize * self.states * self.actions
    }

    /// The rational peer's Q-row for a state bucket.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the peer is not rational.
    #[inline]
    pub fn q_row(&self, peer: usize, bucket: usize) -> &[f64] {
        let start = self.block_start(peer) + bucket * self.actions;
        &self.q[start..start + self.actions]
    }

    /// The rational peer's full Q-block (`states × actions`, row-major), or
    /// `None` for fixed-behaviour peers.
    pub fn q_block(&self, peer: usize) -> Option<&[f64]> {
        self.is_learning(peer).then(|| {
            let start = self.block_start(peer);
            &self.q[start..start + self.states * self.actions]
        })
    }

    /// Records the `(state, action)` a peer chose this step — what
    /// [`CollabAgent::choose`](crate::agent::CollabAgent::choose) stores as
    /// `last_state`/`last_action` for the delayed Q-update. Called for
    /// every online, non-forced peer regardless of behaviour type.
    #[inline]
    pub fn record_choice(&mut self, peer: usize, bucket: usize, action_index: usize) {
        self.last_state[peer] = bucket as u32;
        self.last_action[peer] = action_index as u8;
    }

    /// The state bucket of the peer's most recent choice, if any.
    pub fn last_state_bucket(&self, peer: usize) -> Option<usize> {
        (self.last_state[peer] != NO_STATE).then_some(self.last_state[peer] as usize)
    }

    /// The action index of the peer's most recent choice, if any.
    pub fn last_action_index(&self, peer: usize) -> Option<usize> {
        (self.last_action[peer] != NO_ACTION).then_some(self.last_action[peer] as usize)
    }

    /// Applies the Q-learning update for the reward observed after the last
    /// recorded choice, transitioning to `next_bucket`. Fixed-behaviour
    /// peers ignore the call — same contract as
    /// [`CollabAgent::learn`](crate::agent::CollabAgent::learn).
    ///
    /// # Panics
    ///
    /// Panics if called on a rational peer before any choice was recorded.
    #[inline]
    pub fn learn(&mut self, peer: usize, reward: f64, next_bucket: usize) {
        if !self.is_learning(peer) {
            return;
        }
        let rank = self.learner_rank[peer] as usize;
        let block_len = self.states * self.actions;
        let block = &mut self.q[rank * block_len..(rank + 1) * block_len];
        q_update(
            &self.params,
            self.actions,
            block,
            &mut self.updates[rank],
            self.last_state[peer],
            self.last_action[peer],
            reward,
            next_bucket,
        );
    }

    /// Q-update count of a peer (0 for fixed-behaviour peers).
    pub fn updates_of(&self, peer: usize) -> u64 {
        if self.is_learning(peer) {
            self.updates[self.learner_rank[peer] as usize]
        } else {
            0
        }
    }

    /// Total Q-updates across the population.
    pub fn total_updates(&self) -> u64 {
        self.updates.iter().sum()
    }

    /// The full rank-major flat Q-value array (checkpoint export).
    pub fn q_values(&self) -> &[f64] {
        &self.q
    }

    /// The per-rank Q-update counters (checkpoint export).
    pub fn update_counts(&self) -> &[u64] {
        &self.updates
    }

    /// The sentinel-encoded per-peer last-choice state buckets (checkpoint
    /// export; `u32::MAX` = no choice recorded yet).
    pub fn last_states_raw(&self) -> &[u32] {
        &self.last_state
    }

    /// The sentinel-encoded per-peer last-choice action indices (checkpoint
    /// export; `u8::MAX` = no choice recorded yet).
    pub fn last_actions_raw(&self) -> &[u8] {
        &self.last_action
    }

    /// Overwrites the mutable learning state (Q-values, update counters,
    /// last choices) with a checkpoint export. The immutable layout
    /// (behaviour assignment, ranks, hyper-parameters) is untouched — it is
    /// rebuilt from the configuration, so the slices must match the table's
    /// own dimensions exactly.
    ///
    /// # Panics
    ///
    /// Panics if any slice length differs from the table's layout.
    pub fn restore_learning_state(
        &mut self,
        q: &[f64],
        updates: &[u64],
        last_state: &[u32],
        last_action: &[u8],
    ) {
        assert_eq!(q.len(), self.q.len(), "Q-array length mismatch");
        assert_eq!(updates.len(), self.updates.len(), "update-counter mismatch");
        assert_eq!(
            last_state.len(),
            self.last_state.len(),
            "last-state mismatch"
        );
        assert_eq!(
            last_action.len(),
            self.last_action.len(),
            "last-action mismatch"
        );
        self.q.copy_from_slice(q);
        self.updates.copy_from_slice(updates);
        self.last_state.copy_from_slice(last_state);
        self.last_action.copy_from_slice(last_action);
    }

    /// The rational peer's greedy action index for a state (ties to the
    /// lowest index, like `QTable::greedy_action`); `None` for
    /// fixed-behaviour peers.
    pub fn greedy_action(&self, peer: usize, bucket: usize) -> Option<usize> {
        if !self.is_learning(peer) {
            return None;
        }
        let row = self.q_row(peer, bucket);
        let mut best = 0usize;
        let mut best_value = row[0];
        for (a, &v) in row.iter().enumerate().skip(1) {
            if v > best_value {
                best = a;
                best_value = v;
            }
        }
        Some(best)
    }

    /// Splits the table into disjoint mutable shards along `bounds` (peer
    /// indices, ascending, starting at 0 and ending at the population), so
    /// the learning phase's scoped workers can update contiguous peer
    /// ranges in parallel. Ranks are monotone in peer id, so each peer
    /// range owns a contiguous Q range.
    pub fn split_mut(&mut self, bounds: &[usize]) -> Vec<AgentShardMut<'_>> {
        assert!(bounds.len() >= 2, "need at least one range");
        assert_eq!(*bounds.first().unwrap(), 0, "ranges must start at 0");
        assert_eq!(
            *bounds.last().unwrap(),
            self.behaviors.len(),
            "ranges must cover the population"
        );
        let block_len = self.states * self.actions;
        let mut shards = Vec::with_capacity(bounds.len() - 1);
        let mut q_rest = self.q.as_mut_slice();
        let mut updates_rest = self.updates.as_mut_slice();
        let mut state_rest = self.last_state.as_mut_slice();
        let mut action_rest = self.last_action.as_mut_slice();
        let mut rank_base = 0usize;
        for window in bounds.windows(2) {
            let (start, end) = (window[0], window[1]);
            assert!(start <= end, "bounds must be ascending");
            let rank_end = self.learner_rank[end] as usize;
            let ranks = rank_end - rank_base;
            let (q, q_tail) = q_rest.split_at_mut(ranks * block_len);
            let (updates, updates_tail) = updates_rest.split_at_mut(ranks);
            let (last_state, state_tail) = state_rest.split_at_mut(end - start);
            let (last_action, action_tail) = action_rest.split_at_mut(end - start);
            shards.push(AgentShardMut {
                start,
                end,
                rank_base,
                behaviors: &self.behaviors,
                learner_rank: &self.learner_rank,
                params: self.params,
                states: self.states,
                actions: self.actions,
                q,
                updates,
                last_state,
                last_action,
            });
            q_rest = q_tail;
            updates_rest = updates_tail;
            state_rest = state_tail;
            action_rest = action_tail;
            rank_base = rank_end;
        }
        shards
    }
}

/// A disjoint mutable shard of an [`AgentTable`] covering a contiguous peer
/// range; peers are addressed by their absolute index.
#[derive(Debug)]
pub struct AgentShardMut<'a> {
    start: usize,
    end: usize,
    rank_base: usize,
    behaviors: &'a [BehaviorType],
    learner_rank: &'a [u32],
    params: QLearningParams,
    states: usize,
    actions: usize,
    q: &'a mut [f64],
    updates: &'a mut [u64],
    last_state: &'a mut [u32],
    last_action: &'a mut [u8],
}

impl AgentShardMut<'_> {
    /// The absolute peer range this shard owns.
    pub fn range(&self) -> std::ops::Range<usize> {
        self.start..self.end
    }

    /// Whether the (absolute-indexed) peer learns.
    #[inline]
    pub fn is_learning(&self, peer: usize) -> bool {
        self.behaviors[peer] == BehaviorType::Rational
    }

    /// Shard-local [`AgentTable::learn`].
    ///
    /// # Panics
    ///
    /// Panics if `peer` lies outside the shard's range, or on a rational
    /// peer without a recorded choice.
    #[inline]
    pub fn learn(&mut self, peer: usize, reward: f64, next_bucket: usize) {
        assert!(
            peer >= self.start && peer < self.end,
            "peer {peer} outside shard range"
        );
        if !self.is_learning(peer) {
            return;
        }
        let rank = self.learner_rank[peer] as usize - self.rank_base;
        let block_len = self.states * self.actions;
        let block = &mut self.q[rank * block_len..(rank + 1) * block_len];
        q_update(
            &self.params,
            self.actions,
            block,
            &mut self.updates[rank],
            self.last_state[peer - self.start],
            self.last_action[peer - self.start],
            reward,
            next_bucket,
        );
    }
}

/// The shared Q-update kernel: exactly
/// [`QLearningAgent::update`](collabsim_rl::qlearning::QLearningAgent::update)
/// on a flat block, including the "prior choose" contract of
/// [`CollabAgent::learn`](crate::agent::CollabAgent::learn).
#[allow(clippy::too_many_arguments)]
#[inline]
fn q_update(
    params: &QLearningParams,
    actions: usize,
    block: &mut [f64],
    updates: &mut u64,
    last_state: u32,
    last_action: u8,
    reward: f64,
    next_bucket: usize,
) {
    assert!(
        last_state != NO_STATE && last_action != NO_ACTION,
        "learn() requires a prior choose() call"
    );
    debug_assert!(reward.is_finite(), "reward must be finite");
    let alpha = params.learning_rate;
    let gamma = params.discount;
    let index = last_state as usize * actions + last_action as usize;
    let old = block[index];
    let next_row = &block[next_bucket * actions..(next_bucket + 1) * actions];
    let future = next_row.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    block[index] = (1.0 - alpha) * old + alpha * (reward + gamma * future);
    *updates += 1;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::{AgentState, CollabAgent};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn behaviors() -> Vec<BehaviorType> {
        vec![
            BehaviorType::Altruistic,
            BehaviorType::Rational,
            BehaviorType::Irrational,
            BehaviorType::Rational,
            BehaviorType::Rational,
        ]
    }

    fn table() -> AgentTable {
        AgentTable::new(
            &behaviors(),
            StateSpace::new(10),
            QLearningParams::default(),
        )
    }

    #[test]
    fn ranks_are_dense_over_rational_peers() {
        let t = table();
        assert_eq!(t.population(), 5);
        assert_eq!(t.learner_count(), 3);
        assert!(!t.is_learning(0));
        assert!(t.is_learning(1));
        assert_eq!(t.q.len(), 3 * 10 * 27);
        assert_eq!(t.action_count(), 27);
    }

    #[test]
    fn learn_matches_collab_agent_bitwise() {
        let mut t = table();
        let mut reference = CollabAgent::new(
            BehaviorType::Rational,
            StateSpace::new(10),
            QLearningParams::default(),
        );
        let mut rng = StdRng::seed_from_u64(3);
        for step in 0..200 {
            let state = AgentState { bucket: step % 10 };
            let action = reference.choose(state, 1.0, &mut rng);
            t.record_choice(1, state.bucket, action.to_index());
            let reward = (step as f64 * 0.37).sin();
            let next = (step + 3) % 10;
            reference.learn(reward, AgentState { bucket: next });
            t.learn(1, reward, next);
        }
        let learner = reference.learner().unwrap();
        assert_eq!(t.updates_of(1), learner.updates());
        for s in 0..10 {
            for (a, &v) in learner.table().row(s).iter().enumerate() {
                assert_eq!(t.q_row(1, s)[a].to_bits(), v.to_bits(), "s={s} a={a}");
            }
        }
    }

    #[test]
    fn learn_is_a_noop_for_fixed_peers() {
        let mut t = table();
        t.learn(0, 1.0, 0);
        t.learn(2, 1.0, 0);
        assert_eq!(t.total_updates(), 0);
    }

    #[test]
    #[should_panic(expected = "prior choose")]
    fn learn_before_choice_panics_for_rational_peers() {
        let mut t = table();
        t.learn(1, 1.0, 0);
    }

    #[test]
    fn greedy_action_ties_to_lowest_index() {
        let mut t = table();
        assert_eq!(t.greedy_action(0, 0), None);
        assert_eq!(t.greedy_action(1, 0), Some(0));
        t.record_choice(1, 0, 5);
        t.learn(1, 10.0, 0);
        assert_eq!(t.greedy_action(1, 0), Some(5));
    }

    #[test]
    fn split_mut_shards_are_equivalent_to_whole_table() {
        let mut sharded = table();
        let mut whole = table();
        for p in 0..5 {
            sharded.record_choice(p, p % 10, p % 27);
            whole.record_choice(p, p % 10, p % 27);
        }
        let bounds = [0usize, 2, 5];
        let mut shards = sharded.split_mut(&bounds);
        assert_eq!(shards.len(), 2);
        assert_eq!(shards[0].range(), 0..2);
        assert_eq!(shards[1].range(), 2..5);
        for p in 0..5 {
            let reward = p as f64 * 0.5 - 1.0;
            let shard = if p < 2 {
                &mut shards[0]
            } else {
                &mut shards[1]
            };
            shard.learn(p, reward, (p + 1) % 10);
            whole.learn(p, reward, (p + 1) % 10);
        }
        drop(shards);
        assert_eq!(sharded.total_updates(), whole.total_updates());
        for p in [1usize, 3, 4] {
            for s in 0..10 {
                let a_row = sharded.q_row(p, s);
                let b_row = whole.q_row(p, s);
                for (a, b) in a_row.iter().zip(b_row) {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "outside shard range")]
    fn shard_rejects_foreign_peer() {
        let mut t = table();
        let mut shards = t.split_mut(&[0, 2, 5]);
        shards[0].learn(4, 0.0, 0);
    }

    #[test]
    fn last_choice_accessors_roundtrip() {
        let mut t = table();
        assert_eq!(t.last_state_bucket(1), None);
        assert_eq!(t.last_action_index(1), None);
        t.record_choice(1, 7, 13);
        assert_eq!(t.last_state_bucket(1), Some(7));
        assert_eq!(t.last_action_index(1), Some(13));
    }
}
