//! Declarative scenario specifications: the public entry point for
//! composing experiments.
//!
//! A [`ScenarioSpec`] is a serializable description of one simulation run —
//! population, behaviour mix, incentive scheme, seed, propagation wiring,
//! churn model, and the *ordered list of named phases* that constitutes a
//! step — with a validating builder ([`ScenarioSpecBuilder`]) that returns
//! a typed [`SpecError`] instead of panicking. Specs are the unit the
//! experiment layer iterates ([`ScenarioGrid`](crate::experiment::ScenarioGrid)
//! expands into specs, [`ScenarioRunner`](crate::experiment::ScenarioRunner)
//! executes them), and the phase list is resolved against a
//! [`PhaseRegistry`] — so a new workload is
//! a new spec (plus, at most, a registered phase), never an engine edit.
//!
//! The paper presets that used to live on
//! [`SimulationConfig`] are thin spec
//! constructors here: [`ScenarioSpec::paper_figure3_with_incentive`],
//! [`ScenarioSpec::paper_figure3_without_incentive`],
//! [`ScenarioSpec::large_population`], and the churn-enabled
//! [`ScenarioSpec::churn_stress`]. A spec built from an unchanged config
//! resolves to exactly the standard pipeline, so every preset reproduces
//! the golden report bit for bit.
//!
//! # Text format
//!
//! [`ScenarioSpec::to_text`] renders the spec as a `key = value` document
//! and [`ScenarioSpec::parse`] reads it back; the round trip is exact
//! (floating-point values use Rust's shortest round-trippable display
//! form). The offline build environment has no real `serde`, so the format
//! is hand-rolled and deliberately boring:
//!
//! ```text
//! # collabsim scenario spec v1
//! label = churn-demo
//! population = 100
//! mix = 0.6,0.2,0.2
//! incentive = reputation
//! churn = 0.02,0.001,0.005
//! phases = churn,selection,sharing,download,edit-vote,utility,learning
//! ...
//! ```

use crate::adversary::AdversarySpec;
use crate::config::{
    DownloadRate, PhaseConfig, PropagationConfig, ReputationSource, SimulationConfig,
};
use crate::incentive::IncentiveScheme;
use crate::pipeline::{PhaseRegistry, StepPipeline};
use collabsim_gametheory::behavior::BehaviorMix;
use collabsim_netsim::churn::ChurnModel;
use collabsim_netsim::fault::{LinkModel, LinkModelError};
use collabsim_reputation::propagation::PropagationScheme;
use std::fmt;

/// A typed validation or parse error produced by the scenario-spec layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// A configuration field holds an out-of-range value.
    InvalidField {
        /// The offending field (spec key, or the nested config group).
        field: &'static str,
        /// Human-readable description of the violated constraint.
        message: String,
    },
    /// A phase name in the spec's phase list is not registered.
    UnknownPhase {
        /// The unresolvable phase name.
        name: String,
    },
    /// An adversary strategy name is not registered in the
    /// [`AdversaryRegistry`](crate::adversary::AdversaryRegistry) in use.
    UnknownStrategy {
        /// The unresolvable strategy name.
        name: String,
    },
    /// The `network` key names a link model the fault layer does not know.
    UnknownNetworkModel {
        /// The unresolvable model name.
        name: String,
    },
    /// The spec's phase list is empty.
    EmptyPhaseList,
    /// A line of the text format could not be parsed.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// A spec file could not be read ([`ScenarioSpec::load`]).
    Io {
        /// The path that failed to read.
        path: String,
        /// The underlying I/O error, rendered.
        message: String,
    },
}

impl SpecError {
    /// An [`SpecError::InvalidField`] for `field`.
    pub fn invalid(field: &'static str, message: &str) -> Self {
        Self::InvalidField {
            field,
            message: message.to_string(),
        }
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::InvalidField { field, message } => {
                write!(f, "invalid `{field}`: {message}")
            }
            SpecError::UnknownPhase { name } => {
                write!(f, "unknown phase `{name}` (not in the registry)")
            }
            SpecError::UnknownStrategy { name } => {
                write!(
                    f,
                    "unknown adversary strategy `{name}` (not in the registry)"
                )
            }
            SpecError::UnknownNetworkModel { name } => {
                write!(
                    f,
                    "unknown network model `{name}` (expected ideal, uniform, lognormal, \
                     lossy or clustered)"
                )
            }
            SpecError::EmptyPhaseList => write!(f, "the phase list must not be empty"),
            SpecError::Parse { line, message } => {
                write!(f, "spec parse error at line {line}: {message}")
            }
            SpecError::Io { path, message } => {
                write!(f, "cannot read spec file `{path}`: {message}")
            }
        }
    }
}

impl std::error::Error for SpecError {}

/// A declarative, serializable description of one simulation run.
///
/// Construction always validates: the only ways to obtain a spec are the
/// preset constructors, [`ScenarioSpec::from_config`], the
/// [`ScenarioSpecBuilder`], and [`ScenarioSpec::parse`] — each returns (or
/// internally performs) a full [`SimulationConfig::check`] plus phase-list
/// sanity checks, so a `ScenarioSpec` in hand is always runnable.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    label: String,
    parameter: f64,
    config: SimulationConfig,
    phases: Vec<String>,
}

impl ScenarioSpec {
    /// Starts a builder over the default (paper) configuration.
    pub fn builder() -> ScenarioSpecBuilder {
        ScenarioSpecBuilder::new()
    }

    /// Wraps a full [`SimulationConfig`] as a spec with the default phase
    /// order for that configuration (see [`default_phase_names`]).
    pub fn from_config(config: SimulationConfig) -> Result<Self, SpecError> {
        config.check()?;
        let phases = default_phase_names(&config)
            .into_iter()
            .map(str::to_string)
            .collect();
        Ok(Self {
            label: String::new(),
            parameter: 0.0,
            config,
            phases,
        })
    }

    /// The paper's Figure 3 setting: 100 rational peers, incentive scheme
    /// on. (Former `SimulationConfig::paper_figure3_with_incentive`.)
    pub fn paper_figure3_with_incentive() -> Self {
        Self::from_config(SimulationConfig::paper_figure3_with_incentive())
            .expect("paper preset is valid")
            .with_label("paper-fig3/with-incentive")
    }

    /// The Figure 3 baseline: identical but without any incentive scheme.
    /// (Former `SimulationConfig::paper_figure3_without_incentive`.)
    pub fn paper_figure3_without_incentive() -> Self {
        Self::from_config(SimulationConfig::paper_figure3_without_incentive())
            .expect("paper preset is valid")
            .with_label("paper-fig3/without-incentive")
    }

    /// The population-scale preset of the `large_population` scenario
    /// family. (Former `SimulationConfig::large_population`.)
    pub fn large_population(population: usize) -> Self {
        Self::from_config(SimulationConfig::large_population(population))
            .expect("large-population preset is valid")
            .with_label(format!("large-population/pop={population}"))
            .with_parameter(population as f64)
    }

    /// A churn-stressed paper configuration: the Section-VI discussion made
    /// runnable. Mild background churn (occasional joins and departures)
    /// plus the given per-peer whitewash probability, with the `churn`
    /// phase leading every step. Reputation persistence under re-entry is
    /// observable through [`SimWorld::churn_stats`](crate::world::SimWorld)
    /// or a [`StepObserver`](crate::observer::StepObserver).
    pub fn churn_stress(whitewash_probability: f64) -> Result<Self, SpecError> {
        let churn = ChurnModel {
            join_probability: 0.05,
            leave_probability: 0.002,
            whitewash_probability,
        };
        Self::builder()
            .mix(BehaviorMix::new(0.6, 0.2, 0.2))
            .churn(churn)
            .build()
            .map(|spec| {
                spec.with_label(format!("churn-stress/whitewash={whitewash_probability}"))
                    .with_parameter(whitewash_probability)
            })
    }

    /// The spec's human-readable label (grid cells set `mix/scheme/seed`
    /// style labels; presets use their own).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The swept numeric parameter attached to the spec (0.0 when the spec
    /// is not part of a sweep).
    pub fn parameter(&self) -> f64 {
        self.parameter
    }

    /// The fully resolved simulation configuration.
    pub fn config(&self) -> &SimulationConfig {
        &self.config
    }

    /// The ordered phase names the spec resolves against a registry.
    pub fn phases(&self) -> &[String] {
        &self.phases
    }

    /// Returns the spec with a different label (labels are metadata; no
    /// re-validation needed).
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Returns the spec with a different sweep parameter.
    pub fn with_parameter(mut self, parameter: f64) -> Self {
        self.parameter = parameter;
        self
    }

    /// Returns the spec with a different seed (re-validation is not needed:
    /// every seed is valid).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Resolves the phase list against the standard registry.
    pub fn build_pipeline(&self) -> Result<StepPipeline, SpecError> {
        self.build_pipeline_with(&PhaseRegistry::standard())
    }

    /// Resolves the phase list against a caller-supplied registry (which
    /// may contain custom phases).
    pub fn build_pipeline_with(&self, registry: &PhaseRegistry) -> Result<StepPipeline, SpecError> {
        registry.build_pipeline(&self.phases, &self.config)
    }

    /// Renders the spec as the `key = value` text format (see the module
    /// docs). [`ScenarioSpec::parse`] reads it back exactly.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let c = &self.config;
        let mut out = String::from("# collabsim scenario spec v1\n");
        let mut kv = |key: &str, value: String| {
            let _ = writeln!(out, "{key} = {value}");
        };
        kv("label", encode_label(&self.label));
        kv("parameter", fmt_f64(self.parameter));
        kv("population", c.population.to_string());
        kv("reputation_states", c.reputation_states.to_string());
        kv("min_reputation", fmt_f64(c.min_reputation));
        kv("reputation_beta", fmt_f64(c.reputation_beta));
        kv("incentive", c.incentive.label().to_string());
        kv(
            "mix",
            format!(
                "{},{},{}",
                fmt_f64(c.mix.rational()),
                fmt_f64(c.mix.altruistic()),
                fmt_f64(c.mix.irrational())
            ),
        );
        kv("training_steps", c.phases.training_steps.to_string());
        kv("evaluation_steps", c.phases.evaluation_steps.to_string());
        kv(
            "training_temperature",
            fmt_f64(c.phases.training_temperature),
        );
        kv(
            "evaluation_temperature",
            fmt_f64(c.phases.evaluation_temperature),
        );
        kv("learning_rate", fmt_f64(c.learning.learning_rate));
        kv("discount", fmt_f64(c.learning.discount));
        kv("initial_q", fmt_f64(c.learning.initial_q));
        kv(
            "utility_sharing",
            format!(
                "{},{},{}",
                fmt_f64(c.utility.sharing.alpha),
                fmt_f64(c.utility.sharing.beta),
                fmt_f64(c.utility.sharing.gamma)
            ),
        );
        kv(
            "utility_editing",
            format!(
                "{},{}",
                fmt_f64(c.utility.editing.delta),
                fmt_f64(c.utility.editing.epsilon)
            ),
        );
        kv(
            "contribution",
            format!(
                "{},{},{},{},{},{}",
                fmt_f64(c.contribution.alpha_s),
                fmt_f64(c.contribution.beta_s),
                fmt_f64(c.contribution.decay_s),
                fmt_f64(c.contribution.alpha_e),
                fmt_f64(c.contribution.beta_e),
                fmt_f64(c.contribution.decay_e)
            ),
        );
        kv(
            "service",
            format!(
                "{},{},{}",
                fmt_f64(c.service.edit_threshold),
                fmt_f64(c.service.majority_at_min_reputation),
                fmt_f64(c.service.majority_at_max_reputation)
            ),
        );
        kv(
            "punishment",
            format!(
                "{},{},{}",
                c.punishment.max_unsuccessful_votes,
                c.punishment.max_declined_edits,
                c.punishment.edits_to_restore_voting
            ),
        );
        kv("initial_articles", c.initial_articles.to_string());
        kv(
            "download_probability",
            match c.download_probability {
                DownloadRate::Fixed(p) => fmt_f64(p),
                DownloadRate::InverseSharers => "inverse-sharers".to_string(),
            },
        );
        kv("edit_probability", fmt_f64(c.edit_probability));
        kv(
            "restrict_voters_to_editors",
            c.restrict_voters_to_editors.to_string(),
        );
        kv("max_voters_per_edit", c.max_voters_per_edit.to_string());
        kv(
            "propagation",
            match c.propagation.scheme {
                // The pre-trusted suffix is emitted only when set so every
                // pre-existing spec file stays byte-identical.
                Some(scheme) if c.propagation.pretrusted > 0 => format!(
                    "{}@{},pretrusted={}",
                    scheme.label(),
                    c.propagation.interval,
                    c.propagation.pretrusted
                ),
                Some(scheme) => format!("{}@{}", scheme.label(), c.propagation.interval),
                None => "none".to_string(),
            },
        );
        kv("reputation_source", c.reputation_source.label().to_string());
        // Emitted only when enabled (≠ 1.0) so pre-existing spec files stay
        // byte-identical (parse defaults the key to 1.0).
        if c.reputation_uptime_discount != 1.0 {
            kv(
                "reputation_uptime_discount",
                fmt_f64(c.reputation_uptime_discount),
            );
        }
        // Emitted only when non-ideal so every pre-fault-layer spec file
        // stays byte-identical (parse defaults the key to `ideal`).
        if !c.network.is_ideal() {
            kv("network", c.network.label());
        }
        for adversary in &c.adversaries {
            kv(
                "adversary",
                format!(
                    "{},{},{}",
                    adversary.strategy(),
                    adversary.count(),
                    fmt_f64(adversary.parameter())
                ),
            );
        }
        kv(
            "churn",
            format!(
                "{},{},{}",
                fmt_f64(c.churn.join_probability),
                fmt_f64(c.churn.leave_probability),
                fmt_f64(c.churn.whitewash_probability)
            ),
        );
        kv("ledger_shards", c.ledger_shards.to_string());
        kv("intra_step_threads", c.intra_step_threads.to_string());
        kv("seed", c.seed.to_string());
        kv("phases", self.phases.join(","));
        out
    }

    /// Reads and parses a spec file from disk.
    ///
    /// A read failure is reported as [`SpecError::Io`] (with the path);
    /// everything after the read is exactly [`ScenarioSpec::parse`].
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self, SpecError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(|e| SpecError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        })?;
        Self::parse(&text)
    }

    /// Parses the text format produced by [`ScenarioSpec::to_text`].
    ///
    /// Keys may appear in any order; omitted keys keep their
    /// [`SimulationConfig::default`] values (and the default phase order is
    /// derived from the parsed configuration when no `phases` key is
    /// present). Blank lines and `#` comments are ignored. The resulting
    /// spec is fully validated.
    pub fn parse(text: &str) -> Result<Self, SpecError> {
        let mut label = String::new();
        let mut parameter = 0.0f64;
        let mut config = SimulationConfig::default();
        let mut phases: Option<Vec<String>> = None;

        for (index, raw) in text.lines().enumerate() {
            let line_no = index + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(SpecError::Parse {
                    line: line_no,
                    message: format!("expected `key = value`, got `{line}`"),
                });
            };
            let key = key.trim();
            let value = value.trim();
            let parse_err = |message: String| SpecError::Parse {
                line: line_no,
                message,
            };
            match key {
                "label" => label = decode_label(value, line_no)?,
                "parameter" => parameter = parse_f64(key, value, line_no)?,
                "population" => config.population = parse_int(key, value, line_no)?,
                "reputation_states" => config.reputation_states = parse_int(key, value, line_no)?,
                "min_reputation" => config.min_reputation = parse_f64(key, value, line_no)?,
                "reputation_beta" => config.reputation_beta = parse_f64(key, value, line_no)?,
                "incentive" => {
                    config.incentive = IncentiveScheme::from_label(value)
                        .ok_or_else(|| parse_err(format!("unknown incentive `{value}`")))?;
                }
                "mix" => {
                    let parts = parse_f64_list(key, value, 3, line_no)?;
                    let (r, a, i) = (parts[0], parts[1], parts[2]);
                    if r < 0.0 || a < 0.0 || i < 0.0 {
                        return Err(parse_err("mix fractions must be non-negative".to_string()));
                    }
                    if ((r + a + i) - 1.0).abs() >= 1e-9 {
                        return Err(parse_err(format!(
                            "mix fractions must sum to 1, got {}",
                            r + a + i
                        )));
                    }
                    config.mix = BehaviorMix::new(r, a, i);
                }
                "training_steps" => config.phases.training_steps = parse_int(key, value, line_no)?,
                "evaluation_steps" => {
                    config.phases.evaluation_steps = parse_int(key, value, line_no)?;
                }
                "training_temperature" => {
                    config.phases.training_temperature = parse_f64(key, value, line_no)?;
                }
                "evaluation_temperature" => {
                    config.phases.evaluation_temperature = parse_f64(key, value, line_no)?;
                }
                "learning_rate" => config.learning.learning_rate = parse_f64(key, value, line_no)?,
                "discount" => config.learning.discount = parse_f64(key, value, line_no)?,
                "initial_q" => config.learning.initial_q = parse_f64(key, value, line_no)?,
                "utility_sharing" => {
                    let parts = parse_f64_list(key, value, 3, line_no)?;
                    config.utility.sharing.alpha = parts[0];
                    config.utility.sharing.beta = parts[1];
                    config.utility.sharing.gamma = parts[2];
                }
                "utility_editing" => {
                    let parts = parse_f64_list(key, value, 2, line_no)?;
                    config.utility.editing.delta = parts[0];
                    config.utility.editing.epsilon = parts[1];
                }
                "contribution" => {
                    let parts = parse_f64_list(key, value, 6, line_no)?;
                    config.contribution.alpha_s = parts[0];
                    config.contribution.beta_s = parts[1];
                    config.contribution.decay_s = parts[2];
                    config.contribution.alpha_e = parts[3];
                    config.contribution.beta_e = parts[4];
                    config.contribution.decay_e = parts[5];
                }
                "service" => {
                    let parts = parse_f64_list(key, value, 3, line_no)?;
                    config.service.edit_threshold = parts[0];
                    config.service.majority_at_min_reputation = parts[1];
                    config.service.majority_at_max_reputation = parts[2];
                }
                "punishment" => {
                    let parts = parse_int_list(key, value, 3, line_no)?;
                    config.punishment.max_unsuccessful_votes = parts[0];
                    config.punishment.max_declined_edits = parts[1];
                    config.punishment.edits_to_restore_voting = parts[2];
                }
                "initial_articles" => config.initial_articles = parse_int(key, value, line_no)?,
                "download_probability" => {
                    config.download_probability = if value == "inverse-sharers" {
                        DownloadRate::InverseSharers
                    } else {
                        DownloadRate::Fixed(parse_f64(key, value, line_no)?)
                    };
                }
                "edit_probability" => config.edit_probability = parse_f64(key, value, line_no)?,
                "restrict_voters_to_editors" => {
                    config.restrict_voters_to_editors = match value {
                        "true" => true,
                        "false" => false,
                        other => {
                            return Err(parse_err(format!("expected true/false, got `{other}`")))
                        }
                    };
                }
                "max_voters_per_edit" => {
                    config.max_voters_per_edit = parse_int(key, value, line_no)?;
                }
                "propagation" => {
                    config.propagation = if value == "none" {
                        PropagationConfig::default()
                    } else {
                        let (scheme, rest) = value.split_once('@').ok_or_else(|| {
                            parse_err(format!(
                                "expected `scheme@interval[,pretrusted=K]` or `none`, got `{value}`"
                            ))
                        })?;
                        let (interval, pretrusted) = match rest.split_once(',') {
                            Some((interval, option)) => {
                                let k =
                                    option.trim().strip_prefix("pretrusted=").ok_or_else(|| {
                                        parse_err(format!(
                                            "expected `pretrusted=K` after the interval, \
                                             got `{option}`"
                                        ))
                                    })?;
                                (interval.trim(), parse_int(key, k, line_no)?)
                            }
                            None => (rest, 0),
                        };
                        PropagationConfig {
                            scheme: Some(PropagationScheme::from_label(scheme).ok_or_else(
                                || parse_err(format!("unknown propagation scheme `{scheme}`")),
                            )?),
                            interval: parse_int(key, interval, line_no)?,
                            pretrusted,
                        }
                    };
                }
                "reputation_source" => {
                    config.reputation_source = ReputationSource::from_label(value)
                        .ok_or_else(|| parse_err(format!("unknown reputation source `{value}`")))?;
                }
                "reputation_uptime_discount" => {
                    config.reputation_uptime_discount = parse_f64(key, value, line_no)?;
                }
                "defence" => {
                    apply_defence(&mut config, value).map_err(parse_err)?;
                }
                "network" => {
                    config.network = LinkModel::from_label(value).map_err(|e| match e {
                        LinkModelError::UnknownModel { name } => {
                            SpecError::UnknownNetworkModel { name }
                        }
                        LinkModelError::InvalidParameter { message } => parse_err(message),
                    })?;
                }
                "adversary" => {
                    let parts: Vec<&str> = value.split(',').map(str::trim).collect();
                    if parts.len() != 3 {
                        return Err(parse_err(format!(
                            "`adversary` expects `strategy,count,parameter`, got `{value}`"
                        )));
                    }
                    let count: usize = parse_int(key, parts[1], line_no)?;
                    let parameter = parse_f64(key, parts[2], line_no)?;
                    config
                        .adversaries
                        .push(AdversarySpec::new(parts[0], count).with_parameter(parameter));
                }
                "churn" => {
                    let parts = parse_f64_list(key, value, 3, line_no)?;
                    config.churn = ChurnModel {
                        join_probability: parts[0],
                        leave_probability: parts[1],
                        whitewash_probability: parts[2],
                    };
                }
                "ledger_shards" => config.ledger_shards = parse_int(key, value, line_no)?,
                "intra_step_threads" => config.intra_step_threads = parse_int(key, value, line_no)?,
                "seed" => config.seed = parse_int(key, value, line_no)?,
                "phases" => {
                    phases = Some(
                        value
                            .split(',')
                            .map(|p| p.trim().to_string())
                            .filter(|p| !p.is_empty())
                            .collect(),
                    );
                }
                unknown => {
                    return Err(parse_err(format!("unknown spec key `{unknown}`")));
                }
            }
        }

        ScenarioSpecBuilder {
            label,
            parameter,
            config,
            phases,
            extra_phases: Vec::new(),
        }
        .build()
    }
}

/// Formats an `f64` in Rust's shortest round-trippable display form (what
/// `f64::to_string` produces); `ScenarioSpec::parse` recovers the exact
/// bits.
fn fmt_f64(value: f64) -> String {
    value.to_string()
}

/// Expands the `defence = <name>` spec sugar into its concrete fields.
///
/// The arms-race harness evaluates attackers against named defence
/// configurations; this key lets a spec select one by name instead of
/// repeating the field combination. It is pure parse-time sugar — the
/// fields below are set as if they had been written out, later keys still
/// override them, and [`ScenarioSpec::to_text`] always emits the concrete
/// fields (so the round trip is exact and checked-in files never contain
/// the sugar form).
///
/// | value | expansion |
/// |-------|-----------|
/// | `ledger` | no propagation, ledger reputation (the paper's model) |
/// | `eigentrust` | `propagation = eigentrust@50`, propagated reputation |
/// | `eigentrust-pretrusted=K` | stock eigentrust plus a `K`-peer pre-trusted set |
/// | `gossip` | `propagation = gossip@50`, propagated reputation |
/// | `uptime-discount=F` | ledger reputation with `reputation_uptime_discount = F` |
pub fn apply_defence(config: &mut SimulationConfig, value: &str) -> Result<(), String> {
    const DEFENCE_INTERVAL: u64 = 50;
    let propagated = |scheme, pretrusted| PropagationConfig {
        scheme: Some(scheme),
        interval: DEFENCE_INTERVAL,
        pretrusted,
    };
    match value {
        "ledger" => {
            config.propagation = PropagationConfig::default();
            config.reputation_source = ReputationSource::Ledger;
            config.reputation_uptime_discount = 1.0;
        }
        "eigentrust" => {
            config.propagation = propagated(PropagationScheme::EigenTrust, 0);
            config.reputation_source = ReputationSource::Propagated;
        }
        "gossip" => {
            config.propagation = propagated(PropagationScheme::Gossip, 0);
            config.reputation_source = ReputationSource::Propagated;
        }
        other => {
            if let Some(k) = other.strip_prefix("eigentrust-pretrusted=") {
                let k: usize = k
                    .trim()
                    .parse()
                    .map_err(|_| format!("invalid pre-trusted set size `{k}`"))?;
                config.propagation = propagated(PropagationScheme::EigenTrust, k);
                config.reputation_source = ReputationSource::Propagated;
            } else if let Some(f) = other.strip_prefix("uptime-discount=") {
                let factor: f64 = f
                    .trim()
                    .parse()
                    .map_err(|_| format!("invalid uptime discount factor `{f}`"))?;
                config.propagation = PropagationConfig::default();
                config.reputation_source = ReputationSource::Ledger;
                config.reputation_uptime_discount = factor;
            } else {
                return Err(format!(
                    "unknown defence `{other}` (expected ledger, eigentrust, \
                     eigentrust-pretrusted=K, gossip or uptime-discount=F)"
                ));
            }
        }
    }
    Ok(())
}

/// Renders a label for the text format. Plain labels are written verbatim;
/// labels the line-based parser would mangle (leading/trailing whitespace,
/// newlines, quotes, backslashes) are written as a quoted string with
/// `\" \\ \n \r` escapes, so the round trip stays exact for *every* label.
fn encode_label(label: &str) -> String {
    let needs_quoting = label != label.trim() || label.contains(['"', '\\', '\n', '\r']);
    if !needs_quoting {
        return label.to_string();
    }
    let mut out = String::with_capacity(label.len() + 2);
    out.push('"');
    for c in label.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Inverse of [`encode_label`]: unquoted values are taken verbatim (the
/// surrounding parser already trimmed them), quoted values are unescaped.
fn decode_label(value: &str, line: usize) -> Result<String, SpecError> {
    if !value.starts_with('"') {
        return Ok(value.to_string());
    }
    let inner = value[1..]
        .strip_suffix('"')
        .ok_or_else(|| SpecError::Parse {
            line,
            message: "unterminated quoted label".to_string(),
        })?;
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        match c {
            '\\' => match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                other => {
                    return Err(SpecError::Parse {
                        line,
                        message: format!(
                            "bad escape `\\{}` in quoted label",
                            other.map(String::from).unwrap_or_default()
                        ),
                    })
                }
            },
            '"' => {
                return Err(SpecError::Parse {
                    line,
                    message: "unescaped quote inside quoted label".to_string(),
                })
            }
            c => out.push(c),
        }
    }
    Ok(out)
}

fn parse_f64(key: &str, value: &str, line: usize) -> Result<f64, SpecError> {
    value.parse().map_err(|_| SpecError::Parse {
        line,
        message: format!("`{key}` expects a number, got `{value}`"),
    })
}

fn parse_int<T: std::str::FromStr>(key: &str, value: &str, line: usize) -> Result<T, SpecError> {
    value.parse().map_err(|_| SpecError::Parse {
        line,
        message: format!("`{key}` expects an integer, got `{value}`"),
    })
}

fn parse_f64_list(key: &str, value: &str, n: usize, line: usize) -> Result<Vec<f64>, SpecError> {
    let parts: Vec<&str> = value.split(',').map(str::trim).collect();
    if parts.len() != n {
        return Err(SpecError::Parse {
            line,
            message: format!("`{key}` expects {n} comma-separated numbers, got `{value}`"),
        });
    }
    parts.iter().map(|p| parse_f64(key, p, line)).collect()
}

fn parse_int_list(key: &str, value: &str, n: usize, line: usize) -> Result<Vec<u32>, SpecError> {
    let parts: Vec<&str> = value.split(',').map(str::trim).collect();
    if parts.len() != n {
        return Err(SpecError::Parse {
            line,
            message: format!("`{key}` expects {n} comma-separated integers, got `{value}`"),
        });
    }
    parts.iter().map(|p| parse_int(key, p, line)).collect()
}

/// The default phase order for a configuration: the six Section-IV protocol
/// phases, preceded by `churn` when the churn model generates events and by
/// `adversary` when adversary units are configured (churn first, so
/// strategies observe the post-churn population), and followed by
/// `propagation` when a propagation backend is configured.
pub fn default_phase_names(config: &SimulationConfig) -> Vec<&'static str> {
    let mut names = Vec::with_capacity(9);
    if !config.churn.is_stable() {
        names.push("churn");
    }
    if !config.adversaries.is_empty() {
        names.push("adversary");
    }
    names.extend([
        "selection",
        "sharing",
        "download",
        "edit-vote",
        "utility",
        "learning",
    ]);
    if config.propagation.scheme.is_some() {
        names.push("propagation");
    }
    names
}

/// Builder for [`ScenarioSpec`]: accumulate overrides over the default
/// configuration, then [`ScenarioSpecBuilder::build`] validates everything
/// and returns the spec (or a typed [`SpecError`]).
#[derive(Debug, Clone)]
pub struct ScenarioSpecBuilder {
    label: String,
    parameter: f64,
    config: SimulationConfig,
    phases: Option<Vec<String>>,
    extra_phases: Vec<String>,
}

impl Default for ScenarioSpecBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ScenarioSpecBuilder {
    /// A builder over the default (paper) configuration.
    pub fn new() -> Self {
        Self {
            label: String::new(),
            parameter: 0.0,
            config: SimulationConfig::default(),
            phases: None,
            extra_phases: Vec::new(),
        }
    }

    /// Starts from an explicit base configuration instead of the default.
    pub fn from_base(config: SimulationConfig) -> Self {
        Self {
            label: String::new(),
            parameter: 0.0,
            config,
            phases: None,
            extra_phases: Vec::new(),
        }
    }

    /// Sets the human-readable label.
    pub fn label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Sets the swept numeric parameter.
    pub fn parameter(mut self, parameter: f64) -> Self {
        self.parameter = parameter;
        self
    }

    /// Sets the population size.
    pub fn population(mut self, population: usize) -> Self {
        self.config.population = population;
        self
    }

    /// Sets the behaviour mix.
    pub fn mix(mut self, mix: BehaviorMix) -> Self {
        self.config.mix = mix;
        self
    }

    /// Sets the incentive scheme.
    pub fn incentive(mut self, incentive: IncentiveScheme) -> Self {
        self.config.incentive = incentive;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Sets the phase lengths and temperatures.
    pub fn phase_config(mut self, phases: PhaseConfig) -> Self {
        self.config.phases = phases;
        self
    }

    /// Sets the number of initially seeded articles.
    pub fn initial_articles(mut self, articles: usize) -> Self {
        self.config.initial_articles = articles;
        self
    }

    /// Enables the propagation phase with the given backend and interval.
    pub fn propagation(mut self, scheme: PropagationScheme, interval: u64) -> Self {
        self.config.propagation = PropagationConfig {
            scheme: Some(scheme),
            interval,
            pretrusted: 0,
        };
        self
    }

    /// Sets the churn model (a non-stable model prepends the `churn` phase
    /// to the default phase order).
    pub fn churn(mut self, churn: ChurnModel) -> Self {
        self.config.churn = churn;
        self
    }

    /// Sets the network link model (the fault layer; defaults to the ideal
    /// model, which injects nothing and keeps runs bit-identical to a
    /// fault-unaware build).
    pub fn network(mut self, network: LinkModel) -> Self {
        self.config.network = network;
        self
    }

    /// Adds one strategic adversary unit (a non-empty adversary list
    /// prepends the `adversary` phase to the default phase order). Call
    /// repeatedly for multiple units.
    pub fn adversary(mut self, adversary: AdversarySpec) -> Self {
        self.config.adversaries.push(adversary);
        self
    }

    /// Replaces the adversary unit list wholesale.
    pub fn adversaries<I: IntoIterator<Item = AdversarySpec>>(mut self, adversaries: I) -> Self {
        self.config.adversaries = adversaries.into_iter().collect();
        self
    }

    /// Feeds service differentiation from the configured propagation
    /// backend's output instead of the globally visible ledger (requires
    /// [`ScenarioSpecBuilder::propagation`]; validated at build time).
    pub fn propagated_reputation(mut self) -> Self {
        self.config.reputation_source = ReputationSource::Propagated;
        self
    }

    /// Sets the ledger shard count (`0` = automatic).
    pub fn ledger_shards(mut self, shards: usize) -> Self {
        self.config.ledger_shards = shards;
        self
    }

    /// Sets the intra-step worker-thread count (`0` = automatic).
    pub fn intra_step_threads(mut self, threads: usize) -> Self {
        self.config.intra_step_threads = threads;
        self
    }

    /// Applies an arbitrary configuration edit (escape hatch for the knobs
    /// without a dedicated builder method; the final `build` still
    /// validates the result).
    pub fn configure(mut self, edit: impl FnOnce(&mut SimulationConfig)) -> Self {
        edit(&mut self.config);
        self
    }

    /// Replaces the phase order wholesale (names are resolved against a
    /// [`PhaseRegistry`] when a pipeline is
    /// built).
    pub fn phase_order<I, S>(mut self, names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.phases = Some(names.into_iter().map(Into::into).collect());
        self
    }

    /// Appends one phase name to the phase order. Extras are resolved at
    /// [`ScenarioSpecBuilder::build`] time: they follow the explicit
    /// [`ScenarioSpecBuilder::phase_order`] if one was set, and otherwise
    /// the default order of the *final* configuration — so a later
    /// `.churn()`/`.propagation()` call still contributes its phase.
    pub fn push_phase(mut self, name: impl Into<String>) -> Self {
        self.extra_phases.push(name.into());
        self
    }

    /// Validates the accumulated configuration and phase list and returns
    /// the spec.
    pub fn build(self) -> Result<ScenarioSpec, SpecError> {
        self.config.check()?;
        let mut phases = match self.phases {
            Some(phases) => {
                if phases.is_empty() && self.extra_phases.is_empty() {
                    return Err(SpecError::EmptyPhaseList);
                }
                phases
            }
            None => default_phase_names(&self.config)
                .into_iter()
                .map(str::to_string)
                .collect(),
        };
        phases.extend(self.extra_phases);
        // Adversary units without the `adversary` phase would be silently
        // half-active: the edit-vote phase consults the roster's vote
        // policies unconditionally, while forced actions and whitewashes
        // only happen inside the phase. Reject the combination instead of
        // shipping a partial attack the spec never declared.
        if !self.config.adversaries.is_empty() && !phases.iter().any(|p| p == "adversary") {
            return Err(SpecError::invalid(
                "phases",
                "adversary units are configured but the phase order omits the `adversary` phase",
            ));
        }
        Ok(ScenarioSpec {
            label: self.label,
            parameter: self.parameter,
            config: self.config,
            phases,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_uses_the_standard_phase_order() {
        let spec = ScenarioSpec::from_config(SimulationConfig::default()).unwrap();
        assert_eq!(
            spec.phases(),
            &[
                "selection",
                "sharing",
                "download",
                "edit-vote",
                "utility",
                "learning"
            ]
        );
        assert_eq!(spec.label(), "");
        assert_eq!(spec.parameter(), 0.0);
    }

    #[test]
    fn propagation_and_churn_extend_the_default_order() {
        let spec = ScenarioSpec::builder()
            .propagation(PropagationScheme::Gossip, 50)
            .churn(ChurnModel::mild())
            .build()
            .unwrap();
        assert_eq!(spec.phases().first().map(String::as_str), Some("churn"));
        assert_eq!(
            spec.phases().last().map(String::as_str),
            Some("propagation")
        );
        assert_eq!(spec.phases().len(), 8);
    }

    #[test]
    fn builder_rejects_invalid_configs_with_typed_errors() {
        let err = ScenarioSpec::builder().population(1).build().unwrap_err();
        assert_eq!(
            err,
            SpecError::invalid("population", "population must exceed 1")
        );
        assert!(err.to_string().contains("population must exceed 1"));
        let err = ScenarioSpec::builder()
            .configure(|c| c.edit_probability = 1.5)
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            SpecError::InvalidField {
                field: "edit_probability",
                ..
            }
        ));
    }

    #[test]
    fn builder_rejects_empty_phase_lists() {
        let err = ScenarioSpec::builder()
            .phase_order(Vec::<String>::new())
            .build()
            .unwrap_err();
        assert_eq!(err, SpecError::EmptyPhaseList);
    }

    #[test]
    fn text_round_trip_is_exact_for_presets() {
        for spec in [
            ScenarioSpec::paper_figure3_with_incentive(),
            ScenarioSpec::paper_figure3_without_incentive(),
            ScenarioSpec::large_population(10_000),
            ScenarioSpec::churn_stress(0.01).unwrap(),
        ] {
            let text = spec.to_text();
            let parsed = ScenarioSpec::parse(&text).unwrap();
            assert_eq!(parsed, spec, "round trip drifted for {}", spec.label());
        }
    }

    #[test]
    fn awkward_labels_round_trip_through_quoting() {
        for label in [
            "a\nb",
            " leading-space",
            "trailing-space ",
            "quo\"ted",
            "back\\slash",
            "#looks-like-a-comment",
            "mix=40%/seed=1",
            "",
        ] {
            let spec = ScenarioSpec::from_config(SimulationConfig::default())
                .unwrap()
                .with_label(label);
            let parsed = ScenarioSpec::parse(&spec.to_text()).unwrap();
            assert_eq!(parsed.label(), label, "label {label:?} drifted");
            assert_eq!(parsed, spec);
        }
        let err = ScenarioSpec::parse("label = \"unterminated\n").unwrap_err();
        assert!(matches!(err, SpecError::Parse { .. }));
    }

    #[test]
    fn parse_defaults_missing_keys_and_reports_bad_lines() {
        let spec = ScenarioSpec::parse("population = 42\n").unwrap();
        assert_eq!(spec.config().population, 42);
        assert_eq!(spec.config().seed, SimulationConfig::default().seed);
        assert_eq!(spec.phases().len(), 6, "default phase order");

        let err = ScenarioSpec::parse("population == 42\n").unwrap_err();
        assert!(matches!(err, SpecError::Parse { line: 1, .. }));
        let err = ScenarioSpec::parse("no_such_key = 3\n").unwrap_err();
        assert!(err.to_string().contains("no_such_key"));
        let err = ScenarioSpec::parse("population = 1\n").unwrap_err();
        assert!(matches!(
            err,
            SpecError::InvalidField {
                field: "population",
                ..
            }
        ));
    }

    #[test]
    fn parse_handles_special_values() {
        let spec = ScenarioSpec::parse(
            "download_probability = inverse-sharers\npropagation = eigentrust@25\n",
        )
        .unwrap();
        assert_eq!(
            spec.config().download_probability,
            DownloadRate::InverseSharers
        );
        assert_eq!(
            spec.config().propagation.scheme,
            Some(PropagationScheme::EigenTrust)
        );
        assert_eq!(spec.config().propagation.interval, 25);
        assert_eq!(
            spec.phases().last().map(String::as_str),
            Some("propagation")
        );
    }

    #[test]
    fn training_temperature_round_trips_f64_max() {
        let spec = ScenarioSpec::from_config(SimulationConfig::default()).unwrap();
        let parsed = ScenarioSpec::parse(&spec.to_text()).unwrap();
        assert_eq!(
            parsed.config().phases.training_temperature.to_bits(),
            f64::MAX.to_bits()
        );
    }

    #[test]
    fn push_phase_extends_the_default_order() {
        let spec = ScenarioSpec::builder()
            .push_phase("my-metrics")
            .build()
            .unwrap();
        assert_eq!(spec.phases().len(), 7);
        assert_eq!(spec.phases().last().map(String::as_str), Some("my-metrics"));
    }

    #[test]
    fn push_phase_before_churn_still_includes_the_churn_phase() {
        // Extras resolve against the *final* configuration's default
        // order, so builder call order cannot silently drop a phase.
        let spec = ScenarioSpec::builder()
            .push_phase("my-metrics")
            .churn(ChurnModel::mild())
            .build()
            .unwrap();
        assert_eq!(spec.phases().first().map(String::as_str), Some("churn"));
        assert_eq!(spec.phases().last().map(String::as_str), Some("my-metrics"));
        assert_eq!(spec.phases().len(), 8);
    }

    #[test]
    fn adversaries_enter_the_default_order_and_round_trip() {
        let spec = ScenarioSpec::builder()
            .adversary(AdversarySpec::new("adaptive-whitewash", 5))
            .adversary(AdversarySpec::new("naive-whitewash", 3).with_parameter(0.05))
            .build()
            .unwrap();
        assert_eq!(spec.phases().first().map(String::as_str), Some("adversary"));
        assert_eq!(spec.phases().len(), 7);
        let text = spec.to_text();
        assert!(text.contains("adversary = adaptive-whitewash,5,0"));
        assert!(text.contains("adversary = naive-whitewash,3,0.05"));
        let parsed = ScenarioSpec::parse(&text).unwrap();
        assert_eq!(parsed, spec, "adversary lines must round-trip exactly");
        assert_eq!(parsed.config().adversaries.len(), 2);
    }

    #[test]
    fn churn_precedes_adversary_in_the_default_order() {
        let spec = ScenarioSpec::builder()
            .churn(ChurnModel::mild())
            .adversary(AdversarySpec::new("collusion-ring", 4))
            .build()
            .unwrap();
        assert_eq!(
            &spec.phases()[..2],
            &["churn".to_string(), "adversary".to_string()],
            "strategies observe the post-churn population"
        );
    }

    #[test]
    fn reputation_source_round_trips_and_requires_propagation() {
        let spec = ScenarioSpec::builder()
            .propagation(PropagationScheme::EigenTrust, 50)
            .propagated_reputation()
            .build()
            .unwrap();
        assert_eq!(
            spec.config().reputation_source,
            crate::config::ReputationSource::Propagated
        );
        let parsed = ScenarioSpec::parse(&spec.to_text()).unwrap();
        assert_eq!(parsed, spec);

        let err = ScenarioSpec::builder()
            .propagated_reputation()
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            SpecError::InvalidField {
                field: "reputation_source",
                ..
            }
        ));
        let err = ScenarioSpec::parse("reputation_source = telepathy\n").unwrap_err();
        assert!(matches!(err, SpecError::Parse { .. }));
    }

    #[test]
    fn pretrusted_set_round_trips_and_defaults_off() {
        let mut config = SimulationConfig::default()
            .with_propagation(PropagationScheme::EigenTrust, 50)
            .with_pretrusted(4);
        config.reputation_source = crate::config::ReputationSource::Propagated;
        let spec = ScenarioSpec::from_config(config).unwrap();
        let text = spec.to_text();
        assert!(text.contains("propagation = eigentrust@50,pretrusted=4"));
        assert_eq!(ScenarioSpec::parse(&text).unwrap(), spec);
        // A zero pre-trusted set emits the historical form, byte-identical.
        let stock = ScenarioSpec::builder()
            .propagation(PropagationScheme::EigenTrust, 50)
            .build()
            .unwrap();
        assert!(stock.to_text().contains("propagation = eigentrust@50\n"));
        // The suffix is validated.
        assert!(ScenarioSpec::parse("propagation = eigentrust@50,trusted=4\n").is_err());
        assert!(ScenarioSpec::parse("propagation = gossip@50,pretrusted=4\n").is_err());
    }

    #[test]
    fn uptime_discount_round_trips_and_defaults_silent() {
        let spec =
            ScenarioSpec::from_config(SimulationConfig::default().with_uptime_discount(0.97))
                .unwrap();
        let text = spec.to_text();
        assert!(text.contains("reputation_uptime_discount = 0.97"));
        assert_eq!(ScenarioSpec::parse(&text).unwrap(), spec);
        // The default factor emits no line, so pre-existing files stay
        // byte-identical.
        let plain = ScenarioSpec::builder().build().unwrap();
        assert!(!plain.to_text().contains("reputation_uptime_discount"));
        assert!(ScenarioSpec::parse("reputation_uptime_discount = 0\n").is_err());
    }

    type DefenceCheck = Box<dyn Fn(&SimulationConfig)>;

    #[test]
    fn defence_sugar_expands_to_concrete_fields() {
        let cases: [(&str, DefenceCheck); 5] = [
            (
                "ledger",
                Box::new(|c: &SimulationConfig| {
                    assert_eq!(c.propagation.scheme, None);
                    assert_eq!(c.reputation_source, crate::config::ReputationSource::Ledger);
                }),
            ),
            (
                "eigentrust",
                Box::new(|c: &SimulationConfig| {
                    assert_eq!(c.propagation.scheme, Some(PropagationScheme::EigenTrust));
                    assert_eq!(c.propagation.pretrusted, 0);
                    assert_eq!(
                        c.reputation_source,
                        crate::config::ReputationSource::Propagated
                    );
                }),
            ),
            (
                "eigentrust-pretrusted=3",
                Box::new(|c: &SimulationConfig| {
                    assert_eq!(c.propagation.scheme, Some(PropagationScheme::EigenTrust));
                    assert_eq!(c.propagation.pretrusted, 3);
                }),
            ),
            (
                "gossip",
                Box::new(|c: &SimulationConfig| {
                    assert_eq!(c.propagation.scheme, Some(PropagationScheme::Gossip));
                }),
            ),
            (
                "uptime-discount=0.9",
                Box::new(|c: &SimulationConfig| {
                    assert_eq!(c.propagation.scheme, None);
                    assert!((c.reputation_uptime_discount - 0.9).abs() < 1e-12);
                }),
            ),
        ];
        for (value, check) in cases {
            let spec = ScenarioSpec::parse(&format!("defence = {value}\n"))
                .unwrap_or_else(|e| panic!("defence {value}: {e}"));
            check(spec.config());
            // The sugar never survives to_text: the round trip re-parses
            // the concrete fields to the same spec.
            let text = spec.to_text();
            assert!(!text.contains("defence"), "sugar must not be emitted");
            assert_eq!(ScenarioSpec::parse(&text).unwrap(), spec);
        }
        assert!(ScenarioSpec::parse("defence = moat\n").is_err());
        assert!(ScenarioSpec::parse("defence = uptime-discount=zero\n").is_err());
    }

    #[test]
    fn network_round_trips_and_defaults_to_ideal() {
        // Every non-ideal model round-trips exactly through the text form.
        for model in [
            LinkModel::UniformLatency { min: 2, max: 8 },
            LinkModel::LognormalLatency {
                mu: 1.5,
                sigma: 0.75,
            },
            LinkModel::IidLoss { loss: 0.05 },
            LinkModel::TwoClusters {
                loss: 0.1,
                penalty: 4,
            },
        ] {
            let spec = ScenarioSpec::builder().network(model).build().unwrap();
            assert_eq!(spec.config().network, model);
            let text = spec.to_text();
            assert!(text.contains(&format!("network = {}", model.label())));
            let parsed = ScenarioSpec::parse(&text).unwrap();
            assert_eq!(parsed, spec);
        }
        // The ideal default emits no `network` line, so pre-fault-layer
        // spec files stay byte-identical.
        let spec = ScenarioSpec::builder().build().unwrap();
        assert_eq!(spec.config().network, LinkModel::Ideal);
        assert!(!spec.to_text().contains("network"));
        assert_eq!(ScenarioSpec::parse(&spec.to_text()).unwrap(), spec);
    }

    #[test]
    fn unknown_network_model_is_a_typed_error() {
        let err = ScenarioSpec::parse("network = carrier-pigeon\n").unwrap_err();
        assert_eq!(
            err,
            SpecError::UnknownNetworkModel {
                name: "carrier-pigeon".to_string()
            }
        );
        assert!(err.to_string().contains("carrier-pigeon"));
        // Bad parameters are parse errors with a line number, not unknowns.
        let err = ScenarioSpec::parse("network = lossy,not-a-number\n").unwrap_err();
        assert!(matches!(err, SpecError::Parse { line: 1, .. }));
        // Out-of-range parameters fail config validation.
        let err = ScenarioSpec::parse("network = lossy,1.5\n").unwrap_err();
        assert!(matches!(
            err,
            SpecError::InvalidField {
                field: "network",
                ..
            }
        ));
    }

    #[test]
    fn invalid_adversary_specs_are_typed_errors() {
        let err = ScenarioSpec::builder()
            .adversary(AdversarySpec::new("bad name", 2))
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            SpecError::InvalidField {
                field: "adversaries",
                ..
            }
        ));
        // Claiming all but one peer leaves fewer than two honest peers.
        let err = ScenarioSpec::builder()
            .population(10)
            .adversary(AdversarySpec::new("collusion-ring", 9))
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            SpecError::InvalidField {
                field: "adversaries",
                ..
            }
        ));
        let err = ScenarioSpec::parse("adversary = collusion-ring,2\n").unwrap_err();
        assert!(matches!(err, SpecError::Parse { .. }));
        // An explicit phase order that omits the adversary phase while
        // units are configured would be silently half-active — rejected.
        let err = ScenarioSpec::builder()
            .adversary(AdversarySpec::new("collusion-ring", 4))
            .phase_order([
                "selection",
                "sharing",
                "download",
                "edit-vote",
                "utility",
                "learning",
            ])
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            SpecError::InvalidField {
                field: "phases",
                ..
            }
        ));
    }
}
