//! `collabsim-cli` — the command-line runner for collabsim scenarios, and
//! the shared runner core behind every perf-gated bench.
//!
//! The `collabsim` binary turns the repo from a library-with-benches into
//! a serving layer for experiment traffic:
//!
//! * **`collabsim run <spec>`** loads a [`ScenarioSpec`] text file (the
//!   exact round-trip format of
//!   [`ScenarioSpec::to_text`]), runs it with phase timings enabled,
//!   optionally streams [`StepObserver`](collabsim::StepObserver) metrics
//!   as JSON lines ([`jsonl`]), and prints a profiling summary
//!   ([`profile`]) — steps/sec plus the per-phase wall-clock breakdown.
//! * **`collabsim run --checkpoint-every N --store <dir>`** additionally
//!   writes a versioned, integrity-checked snapshot of the complete
//!   simulation state to an on-disk run store every N steps, and
//!   **`collabsim resume <snapshot>`** finishes such a run — the resumed
//!   report is byte-identical to the uninterrupted one (the determinism
//!   suite pins this). Bad snapshots exit with `error[snapshot]`, code 3.
//! * **`collabsim grid <specs...> --workers N`** dispatches cells to
//!   `collabsim worker` subprocesses through the crash-isolated
//!   [`coordinator`]: a panicking phase or a SIGKILLed worker is retried
//!   and, if it keeps dying, recorded as failed in the partial-results
//!   manifest — the sweep itself always completes. `--resume` skips
//!   cells already ok in a previous manifest; `--warm-start <snapshot>`
//!   forks every cell from a shared equilibrated checkpoint instead of
//!   paying the training phase once per cell.
//! * **`collabsim worker`** executes one cell and emits a result record
//!   whose report is the `Debug` rendering pinned by the determinism
//!   suite, so cross-process results are byte-comparable with in-process
//!   ones.
//! * **`collabsim scaffold`** regenerates the checked-in `scenarios/`
//!   tree from the canonical constructors in [`scenarios`] — the same
//!   constructors the four perf-gated bench binaries build their grids
//!   from.
//!
//! [`ScenarioSpec`]: collabsim::ScenarioSpec
//! [`ScenarioSpec::to_text`]: collabsim::ScenarioSpec::to_text

pub mod args;
pub mod chaos;
pub mod commands;
pub mod coordinator;
pub mod error;
pub mod jsonl;
pub mod profile;
pub mod runner;
pub mod scenarios;
pub mod training;

pub use args::{Command, USAGE};
pub use chaos::{cli_registry, CHAOS_PANIC_PHASE};
pub use commands::dispatch;
pub use coordinator::{
    parse_cell_result, render_cell_result, run_grid, run_worker, CellOutcome, CellStatus,
    GridOptions, GridSummary, WorkerResult, EXIT_ONCE_CODE, EXIT_ONCE_ENV, KILL_ONCE_ENV,
    TRUNCATE_ONCE_ENV,
};
pub use error::CliError;
pub use jsonl::{json_escape, json_f64, JsonlObserver, JsonlSink};
pub use profile::render_profile;
pub use runner::{
    baseline_number, extract_number, gate_floor, gate_rss_ceiling, load_spec,
    load_spec_with_overrides, resume_snapshot_instrumented, run_spec_checkpointed,
    run_spec_instrumented, snapshot_err, RunOutcome,
};
