//! The arms-race training harness: episodic Q-learning attackers against
//! a panel of defence configurations.
//!
//! The harness equilibrates one adversary-free base population through the
//! training phase ([`equilibrate_base`]), then reuses that checkpoint for
//! every defence arm and every episode via
//! [`Snapshot::with_spec`] — the warm-start
//! primitive the grid coordinator already speaks. One **episode** forks
//! the checkpoint onto the training spec (learning adversaries, α > 0),
//! injects the policy the previous episode ended with, and runs the
//! remaining protocol; the Q-table the roster exports at the end seeds the
//! next episode. After the last episode the policy is **frozen**: re-specced
//! onto an α = 0 cell ([`frozen_snapshot`]) whose greedy replay draws
//! nothing from the adversary RNG stream, so the evaluation is exactly as
//! deterministic as a scripted strategy — `collabsim train` demonstrates
//! this by dispatching the frozen cell through the multi-process grid
//! coordinator and string-comparing the worker's report with the
//! in-process replay.
//!
//! The defence axis ([`ARMS_DEFENCES`]) spans the spec-level `defence`
//! sugar: the paper's globally visible ledger, stock EigenTrust and
//! gossip propagation feeding service differentiation, EigenTrust with a
//! pre-trusted set (the whitewash countermeasure), and the offline
//! reputation-uptime discount.
//!
//! [`Snapshot::with_spec`]: collabsim::Snapshot::with_spec

use crate::error::CliError;
use crate::runner;
use collabsim::adversary::{AdversarySpec, AttackMetricsObserver, UnitAttackMetrics};
use collabsim::config::PhaseConfig;
use collabsim::{
    apply_defence, AttackStats, BehaviorMix, PolicyState, ScenarioSpec, Simulation,
    SimulationConfig, SimulationReport, Snapshot,
};

/// Seed of every arms-race cell (base, training and evaluation share it —
/// warm-start forks require the same deterministic population).
pub const ARMS_SEED: u64 = 0xA2A5_0C1A;

/// Learning rate of the training episodes (frozen evaluation uses 0).
pub const TRAIN_ALPHA: f64 = 0.3;

/// Reset probability of the scripted `naive-whitewash` opponent the
/// trained attacker is measured against.
pub const SCRIPTED_WHITEWASH_PROBABILITY: f64 = 0.02;

/// The defence panel: `(key, spec defence value)`. Keys are stable labels
/// for reports and file names; values expand through
/// [`apply_defence`].
pub const ARMS_DEFENCES: [(&str, &str); 5] = [
    ("ledger", "ledger"),
    ("eigentrust", "eigentrust"),
    ("eigentrust-pretrusted", "eigentrust-pretrusted=4"),
    ("gossip", "gossip"),
    ("uptime-discount", "uptime-discount=0.9"),
];

/// Population / roster / episode sizing of the arms race.
#[derive(Clone, Copy, Debug)]
pub struct ArmsScale {
    /// Total peers per cell.
    pub population: usize,
    /// Peers in the (single) adversary unit.
    pub adversaries: usize,
    /// Training episodes per defence.
    pub episodes: usize,
    /// Phase lengths: the training phase is the shared equilibration
    /// prefix, the evaluation phase is the per-episode length.
    pub phases: PhaseConfig,
}

/// The `arms_race` sizing: 32 peers / 3 attackers / 4 episodes when
/// `quick`, 40 peers / 4 attackers / 8 episodes otherwise.
pub fn arms_scale(quick: bool) -> ArmsScale {
    if quick {
        ArmsScale {
            population: 32,
            adversaries: 3,
            episodes: 4,
            phases: PhaseConfig {
                training_steps: 300,
                evaluation_steps: 200,
                ..Default::default()
            },
        }
    } else {
        ArmsScale {
            population: 40,
            adversaries: 4,
            episodes: 8,
            phases: PhaseConfig {
                training_steps: 500,
                evaluation_steps: 300,
                ..Default::default()
            },
        }
    }
}

fn arms_config(scale: &ArmsScale, defence: &str) -> SimulationConfig {
    let mut config = SimulationConfig {
        population: scale.population,
        initial_articles: scale.population / 2,
        phases: scale.phases,
        ..Default::default()
    }
    .with_mix(BehaviorMix::new(0.5, 0.3, 0.2))
    .with_seed(ARMS_SEED);
    apply_defence(&mut config, defence).expect("arms defence values are valid");
    config
}

/// The adversary-free base population every arm equilibrates from. The
/// base runs under the `ledger` defence — propagated arms fall back to
/// the ledger until their first propagation round anyway, so one shared
/// checkpoint serves the whole panel.
pub fn arms_base_spec(scale: &ArmsScale) -> ScenarioSpec {
    ScenarioSpec::from_config(arms_config(scale, "ledger"))
        .expect("arms base config is valid")
        .with_label("arms/base")
}

/// One training cell: the learning adversary at [`TRAIN_ALPHA`] under the
/// given defence.
pub fn arms_train_spec(scale: &ArmsScale, defence: (&str, &str)) -> ScenarioSpec {
    let mut config = arms_config(scale, defence.1);
    config.adversaries =
        vec![AdversarySpec::new("learning", scale.adversaries).with_parameter(TRAIN_ALPHA)];
    ScenarioSpec::from_config(config)
        .expect("arms training configs are valid")
        .with_label(format!("arms/{}/train", defence.0))
}

/// One frozen-evaluation cell: the learning adversary at α = 0 (greedy
/// replay, zero adversary-RNG draws) under the given defence.
pub fn arms_frozen_spec(scale: &ArmsScale, defence: (&str, &str)) -> ScenarioSpec {
    let mut config = arms_config(scale, defence.1);
    config.adversaries =
        vec![AdversarySpec::new("learning", scale.adversaries).with_parameter(0.0)];
    ScenarioSpec::from_config(config)
        .expect("arms frozen configs are valid")
        .with_label(format!("arms/{}/trained", defence.0))
}

/// The scripted opponent cell: `naive-whitewash` at the same roster size
/// under the given defence.
pub fn arms_scripted_spec(scale: &ArmsScale, defence: (&str, &str)) -> ScenarioSpec {
    let mut config = arms_config(scale, defence.1);
    config.adversaries = vec![AdversarySpec::new("naive-whitewash", scale.adversaries)
        .with_parameter(SCRIPTED_WHITEWASH_PROBABILITY)];
    ScenarioSpec::from_config(config)
        .expect("arms scripted configs are valid")
        .with_label(format!("arms/{}/scripted", defence.0))
}

/// Equilibrates the adversary-free base population through its training
/// phase and returns the spec together with the checkpoint every arm
/// forks from.
pub fn equilibrate_base(scale: &ArmsScale) -> Result<(ScenarioSpec, Snapshot), CliError> {
    let base = arms_base_spec(scale);
    let mut sim =
        Simulation::from_spec(&base).map_err(|error| CliError::Spec { path: None, error })?;
    sim.run_training();
    let checkpoint = sim.snapshot(&base);
    Ok((base, checkpoint))
}

/// One defence arm's training outcome.
#[derive(Debug, Clone)]
pub struct TrainedPolicy {
    /// Per-unit exported policies after the final episode.
    pub policies: Vec<Option<PolicyState>>,
    /// Q-updates accumulated across all episodes (unit 0).
    pub updates: u64,
    /// Q-cells driven away from zero (unit 0) — a coverage proxy.
    pub visited_cells: usize,
}

/// Runs `episodes` training episodes of `train_spec` against the shared
/// `checkpoint`, threading the exported policy from each episode into the
/// next. Every episode replays the same equilibrated prefix (same RNG
/// stream states), so episode-to-episode differences come from the policy
/// alone — the learner explores because its Boltzmann distribution shifts
/// as the Q-table fills in.
pub fn train_against(
    checkpoint: &Snapshot,
    train_spec: &ScenarioSpec,
    episodes: usize,
) -> Result<TrainedPolicy, CliError> {
    let mut policies: Option<Vec<Option<PolicyState>>> = None;
    for _ in 0..episodes.max(1) {
        let fork = checkpoint.with_spec(train_spec);
        let mut sim =
            Simulation::resume_from(&fork).map_err(|error| runner::snapshot_err(None, error))?;
        if let Some(prev) = &policies {
            sim.world_mut().adversaries.restore_policies(prev);
        }
        sim.finish();
        policies = Some(sim.world().adversaries.export_policies());
    }
    let policies = policies.expect("at least one episode ran");
    let lead = policies[0]
        .as_ref()
        .expect("learning unit exports a policy");
    Ok(TrainedPolicy {
        updates: lead.updates,
        visited_cells: lead.q.iter().filter(|&&v| v != 0.0).count(),
        policies: policies.clone(),
    })
}

/// Builds the frozen-evaluation snapshot: the shared checkpoint forked
/// onto `frozen_spec` with the trained Q-tables injected. Per-peer
/// trajectories are dropped — they describe where the *training* episode
/// ended, not where the evaluation starts — so the frozen replay begins
/// from clean slates and is a pure function of the Q-table.
pub fn frozen_snapshot(
    checkpoint: &Snapshot,
    frozen_spec: &ScenarioSpec,
    trained: &[Option<PolicyState>],
) -> Snapshot {
    let mut fork = checkpoint.with_spec(frozen_spec);
    fork.state.adversary_policies = trained
        .iter()
        .map(|policy| {
            policy.as_ref().map(|policy| PolicyState {
                per_peer: Vec::new(),
                ..policy.clone()
            })
        })
        .collect();
    fork
}

/// Measured outcome of one evaluation cell (trained or scripted).
#[derive(Debug, Clone)]
pub struct EvalOutcome {
    /// Attack metrics of unit 0 over the measured phase.
    pub metrics: UnitAttackMetrics,
    /// The unit's attack counters at the end of the run.
    pub stats: AttackStats,
    /// The deterministic report (its `Debug` rendering is the
    /// cross-process comparison format).
    pub report: SimulationReport,
}

impl EvalOutcome {
    /// The headline damage number: bandwidth the attackers extracted
    /// during measurement plus the destructive edits they landed.
    pub fn damage(&self) -> f64 {
        self.metrics.damage_bandwidth + self.metrics.destructive_accepted as f64
    }
}

/// Resumes an evaluation fork with an [`AttackMetricsObserver`] attached
/// and runs it to completion.
pub fn evaluate_fork(fork: &Snapshot) -> Result<EvalOutcome, CliError> {
    let mut sim =
        Simulation::resume_from(fork).map_err(|error| runner::snapshot_err(None, error))?;
    sim.add_observer(AttackMetricsObserver::new());
    let report = sim.finish();
    let stats = *sim.world().adversaries.units()[0].stats();
    let observer: &AttackMetricsObserver = sim.observer(0).expect("attached above");
    Ok(EvalOutcome {
        metrics: observer.metrics()[0].clone(),
        stats,
        report,
    })
}

/// Trains one defence arm end to end and evaluates the frozen policy and
/// the scripted opponent from the same checkpoint. Returns
/// `(trained policy, trained outcome, scripted outcome)`.
pub fn run_defence_arm(
    scale: &ArmsScale,
    checkpoint: &Snapshot,
    defence: (&str, &str),
) -> Result<(TrainedPolicy, EvalOutcome, EvalOutcome), CliError> {
    let trained = train_against(checkpoint, &arms_train_spec(scale, defence), scale.episodes)?;
    let frozen = frozen_snapshot(
        checkpoint,
        &arms_frozen_spec(scale, defence),
        &trained.policies,
    );
    let trained_outcome = evaluate_fork(&frozen)?;
    let scripted_fork = checkpoint.with_spec(&arms_scripted_spec(scale, defence));
    let scripted_outcome = evaluate_fork(&scripted_fork)?;
    Ok((trained, trained_outcome, scripted_outcome))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scale() -> ArmsScale {
        ArmsScale {
            population: 20,
            adversaries: 2,
            episodes: 2,
            phases: PhaseConfig {
                training_steps: 60,
                evaluation_steps: 50,
                ..Default::default()
            },
        }
    }

    #[test]
    fn every_arm_spec_round_trips_and_shares_the_population() {
        let scale = arms_scale(true);
        let base = arms_base_spec(&scale);
        for defence in ARMS_DEFENCES {
            for spec in [
                arms_train_spec(&scale, defence),
                arms_frozen_spec(&scale, defence),
                arms_scripted_spec(&scale, defence),
            ] {
                let reparsed = ScenarioSpec::parse(&spec.to_text()).expect("round trips");
                assert_eq!(reparsed.to_text(), spec.to_text());
                assert_eq!(spec.config().population, base.config().population);
                assert_eq!(spec.config().seed, base.config().seed);
            }
        }
    }

    #[test]
    fn training_accumulates_updates_across_episodes() {
        let scale = tiny_scale();
        let (_, checkpoint) = equilibrate_base(&scale).unwrap();
        let spec = arms_train_spec(&scale, ARMS_DEFENCES[0]);
        let one = train_against(&checkpoint, &spec, 1).unwrap();
        let two = train_against(&checkpoint, &spec, 2).unwrap();
        assert!(one.updates > 0, "an episode must update the table");
        assert!(
            two.updates > one.updates,
            "the second episode must build on the first ({} vs {})",
            two.updates,
            one.updates
        );
    }

    #[test]
    fn frozen_evaluation_is_deterministic_and_carries_the_policy() {
        let scale = tiny_scale();
        let (_, checkpoint) = equilibrate_base(&scale).unwrap();
        let defence = ARMS_DEFENCES[0];
        let trained = train_against(
            &checkpoint,
            &arms_train_spec(&scale, defence),
            scale.episodes,
        )
        .unwrap();
        let frozen = frozen_snapshot(
            &checkpoint,
            &arms_frozen_spec(&scale, defence),
            &trained.policies,
        );
        // The fork must survive the wire format (the grid coordinator
        // hands it to workers as a file).
        let decoded = Snapshot::decode(&frozen.encode()).expect("frozen fork encodes");
        let a = evaluate_fork(&frozen).unwrap();
        let b = evaluate_fork(&decoded).unwrap();
        assert_eq!(
            format!("{:?}", a.report),
            format!("{:?}", b.report),
            "frozen replay must be bit-identical across the codec"
        );
        // Trajectories were dropped; the Q-table was not.
        let policy = decoded.state.adversary_policies[0].as_ref().unwrap();
        assert!(policy.per_peer.is_empty());
        assert!(policy.q.iter().any(|&v| v != 0.0));
    }
}
