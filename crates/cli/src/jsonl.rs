//! Streaming metrics as JSON lines.
//!
//! [`JsonlObserver`] is a [`StepObserver`] that writes one self-contained
//! JSON object per line to any `Write` sink (stdout or a file). The
//! stream has three event shapes:
//!
//! ```text
//! {"event":"run_start","label":"...","population":100,"online":100,"total_steps":12000}
//! {"event":"step","step":25,"online":98,"measuring":false,"joins":3,"leaves":1,"whitewashes":0}
//! {"event":"run_end","label":"...","steps":12000,"shared_bandwidth":0.45,...,"phases":{"selection":0.12,...}}
//! ```
//!
//! `step` events are emitted every `every` steps (and always for the final
//! step), so a 12 000-step run does not have to produce 12 000 lines. The
//! offline build has no serde, so serialization is hand-rolled; every
//! line is nonetheless strict JSON (CI parses the stream with a real
//! parser).

use crate::error::CliError;
use collabsim::observer::WorldView;
use collabsim::pipeline::StepContext;
use collabsim::{SimulationReport, StepObserver};
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::PathBuf;
use std::time::Duration;

/// Escapes a string for inclusion inside a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders an `f64` as a JSON number (`null` for non-finite values, which
/// JSON cannot represent).
pub fn json_f64(value: f64) -> String {
    if value.is_finite() {
        format!("{value}")
    } else {
        "null".to_string()
    }
}

/// Where a JSONL stream goes.
pub enum JsonlSink {
    /// Standard output (requested as `--jsonl -`).
    Stdout,
    /// A file, created (truncated) at attach time.
    File(std::fs::File),
}

impl JsonlSink {
    /// Opens a sink from the CLI's `--jsonl` value (`-` means stdout).
    pub fn open(target: &str) -> Result<Self, CliError> {
        if target == "-" {
            return Ok(JsonlSink::Stdout);
        }
        let path = PathBuf::from(target);
        std::fs::File::create(&path)
            .map(JsonlSink::File)
            .map_err(|e| CliError::Io {
                path,
                message: e.to_string(),
            })
    }

    fn write_line(&mut self, line: &str) {
        // Metric streaming is best effort: a broken pipe must not poison
        // the simulation run itself.
        let _ = match self {
            JsonlSink::Stdout => writeln!(std::io::stdout(), "{line}"),
            JsonlSink::File(file) => writeln!(file, "{line}"),
        };
    }

    fn flush(&mut self) {
        let _ = match self {
            JsonlSink::Stdout => std::io::stdout().flush(),
            JsonlSink::File(file) => file.flush(),
        };
    }
}

/// A [`StepObserver`] streaming run/step/phase metrics as JSON lines.
pub struct JsonlObserver {
    sink: JsonlSink,
    label: String,
    total_steps: u64,
    every: u64,
    /// Per-phase wall-clock totals in seconds, accumulated across steps
    /// and reported in the `run_end` event.
    phase_totals: Vec<(String, f64)>,
}

impl JsonlObserver {
    /// Creates an observer writing to `sink`, emitting a `step` event
    /// every `every` steps (clamped to ≥ 1).
    pub fn new(sink: JsonlSink, label: impl Into<String>, total_steps: u64, every: u64) -> Self {
        Self {
            sink,
            label: label.into(),
            total_steps,
            every: every.max(1),
            phase_totals: Vec::new(),
        }
    }
}

impl StepObserver for JsonlObserver {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn on_run_start(&mut self, world: WorldView<'_>) {
        let line = format!(
            "{{\"event\":\"run_start\",\"label\":\"{}\",\"population\":{},\"online\":{},\"total_steps\":{}}}",
            json_escape(&self.label),
            world.population(),
            world.online_count(),
            self.total_steps,
        );
        self.sink.write_line(&line);
    }

    fn on_phase(
        &mut self,
        phase: &str,
        elapsed: Duration,
        _world: WorldView<'_>,
        _ctx: &StepContext,
    ) {
        let seconds = elapsed.as_secs_f64();
        match self.phase_totals.iter_mut().find(|(name, _)| name == phase) {
            Some((_, total)) => *total += seconds,
            None => self.phase_totals.push((phase.to_string(), seconds)),
        }
    }

    fn on_step_end(&mut self, world: WorldView<'_>, _ctx: &StepContext) {
        let step = world.now();
        if step % self.every != 0 && step != self.total_steps {
            return;
        }
        let churn = world.churn_stats();
        let line = format!(
            "{{\"event\":\"step\",\"step\":{},\"online\":{},\"measuring\":{},\
             \"joins\":{},\"leaves\":{},\"whitewashes\":{}}}",
            step,
            world.online_count(),
            world.measuring(),
            churn.joins,
            churn.leaves,
            churn.whitewashes,
        );
        self.sink.write_line(&line);
    }

    fn on_run_end(&mut self, world: WorldView<'_>, report: &SimulationReport) {
        let mut phases = String::new();
        for (i, (name, seconds)) in self.phase_totals.iter().enumerate() {
            let sep = if i + 1 < self.phase_totals.len() {
                ","
            } else {
                ""
            };
            let _ = write!(
                phases,
                "\"{}\":{}{sep}",
                json_escape(name),
                json_f64(*seconds)
            );
        }
        let line = format!(
            "{{\"event\":\"run_end\",\"label\":\"{}\",\"steps\":{},\"online\":{},\
             \"shared_bandwidth\":{},\"shared_articles\":{},\"mean_article_quality\":{},\
             \"completed_downloads\":{},\"evaluation_steps\":{},\"seed\":{},\
             \"phases\":{{{phases}}}}}",
            json_escape(&self.label),
            world.now(),
            world.online_count(),
            json_f64(report.shared_bandwidth),
            json_f64(report.shared_articles),
            json_f64(report.mean_article_quality),
            report.completed_downloads,
            report.evaluation_steps,
            report.seed,
        );
        self.sink.write_line(&line);
        self.sink.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_quotes_backslashes_and_control_characters() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b"), "a\\\"b");
        assert_eq!(json_escape("a\\b"), "a\\\\b");
        assert_eq!(json_escape("a\nb\tc"), "a\\nb\\tc");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(json_f64(1.5), "1.5");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
    }
}
