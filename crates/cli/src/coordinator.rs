//! The process-level grid coordinator and the worker cell executor.
//!
//! `collabsim grid` writes every cell's spec to disk, dispatches cells to
//! `collabsim worker` subprocesses (at most `--workers` in flight), and
//! collects one result record per cell. A worker that crashes — a
//! panicking phase, an OOM kill, a stray SIGKILL — is *absorbed*: the
//! cell is re-queued up to `--retries` times — after an exponential
//! backoff, so a transiently overloaded machine gets room to recover —
//! and, if it keeps dying, recorded as `failed` in the partial-results
//! manifest together with the tail of the final attempt's worker log.
//! The sweep always completes; no cell can take it down.
//!
//! Reports cross the process boundary as the `Debug` rendering of
//! [`SimulationReport`](collabsim::SimulationReport) inside a
//! `# collabsim cell result v1` record —
//! the same rendering the determinism suite pins byte-for-byte, which
//! makes "worker result == in-process result" a string equality.

use crate::error::CliError;
use crate::jsonl::{json_escape, json_f64};
use collabsim::observer::WorldView;
use collabsim::pipeline::StepContext;
use collabsim::snapshot::read_snapshot_file;
use collabsim::{ScenarioSpec, StepObserver};
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// The result record a worker writes for its cell.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerResult {
    /// Cell label.
    pub label: String,
    /// Swept parameter.
    pub parameter: f64,
    /// Steps executed.
    pub total_steps: u64,
    /// World-construction wall-clock.
    pub build_seconds: f64,
    /// Stepping wall-clock.
    pub run_seconds: f64,
    /// Throughput.
    pub steps_per_sec: f64,
    /// `format!("{:?}", report)` — the canonical cross-process report
    /// serialization, bit-identical to an in-process run.
    pub report_debug: String,
}

/// Header line of the cell-result record format.
pub const CELL_RESULT_HEADER: &str = "# collabsim cell result v1";

/// Renders a worker's result record (`key = value` lines under a version
/// header; floats use the shortest round-trippable form).
pub fn render_cell_result(result: &WorkerResult) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{CELL_RESULT_HEADER}");
    let _ = writeln!(out, "label = {}", result.label);
    let _ = writeln!(out, "parameter = {}", result.parameter);
    let _ = writeln!(out, "total_steps = {}", result.total_steps);
    let _ = writeln!(out, "build_seconds = {}", result.build_seconds);
    let _ = writeln!(out, "run_seconds = {}", result.run_seconds);
    let _ = writeln!(out, "steps_per_sec = {}", result.steps_per_sec);
    let _ = writeln!(out, "report = {}", result.report_debug);
    out
}

/// Parses a cell-result record; `None` for anything malformed or
/// truncated (a worker killed mid-write never produces a parseable
/// record, so the coordinator treats it as a crash).
pub fn parse_cell_result(text: &str) -> Option<WorkerResult> {
    let mut lines = text.lines();
    if lines.next()?.trim() != CELL_RESULT_HEADER {
        return None;
    }
    let mut label = None;
    let mut parameter = None;
    let mut total_steps = None;
    let mut build_seconds = None;
    let mut run_seconds = None;
    let mut steps_per_sec = None;
    let mut report_debug = None;
    for line in lines {
        let Some((key, value)) = line.split_once(" = ") else {
            continue;
        };
        match key.trim() {
            "label" => label = Some(value.to_string()),
            "parameter" => parameter = value.parse().ok(),
            "total_steps" => total_steps = value.parse().ok(),
            "build_seconds" => build_seconds = value.parse().ok(),
            "run_seconds" => run_seconds = value.parse().ok(),
            "steps_per_sec" => steps_per_sec = value.parse().ok(),
            "report" => report_debug = Some(value.to_string()),
            _ => {}
        }
    }
    Some(WorkerResult {
        label: label?,
        parameter: parameter?,
        total_steps: total_steps?,
        build_seconds: build_seconds?,
        run_seconds: run_seconds?,
        steps_per_sec: steps_per_sec?,
        report_debug: report_debug?,
    })
}

/// Environment variable naming a marker file for the deterministic
/// crash-injection test: the first worker to claim the marker (atomic
/// `create_new`) SIGKILLs itself mid-run; every later worker — including
/// the retry of the killed cell — sees the marker and runs normally.
pub const KILL_ONCE_ENV: &str = "COLLABSIM_TEST_KILL_ONCE";

/// Environment variable naming a marker file for the deterministic
/// truncation-injection test: the first worker to claim the marker writes
/// only the front half of its result record (a torn write — the header is
/// present but the record does not parse) and exits 0. The coordinator
/// must detect the unparseable record, re-queue the cell, and the retry —
/// which sees the marker taken — completes normally.
pub const TRUNCATE_ONCE_ENV: &str = "COLLABSIM_TEST_TRUNCATE_ONCE";

/// Environment variable naming a marker file for the deterministic
/// nonzero-exit injection test: the first worker to claim the marker
/// exits with [`EXIT_ONCE_CODE`] before running its cell. The
/// coordinator must classify this as a worker failure *with* an exit
/// code (`failure_kind = "worker-exit"`), distinct from a torn record
/// behind a clean exit.
pub const EXIT_ONCE_ENV: &str = "COLLABSIM_TEST_EXIT_ONCE";

/// The exit code the [`EXIT_ONCE_ENV`]-injected worker dies with.
pub const EXIT_ONCE_CODE: i32 = 41;

/// Claims the nonzero-exit marker, mirroring [`kill_switch`]'s atomic
/// `create_new` claim.
fn exit_switch() -> bool {
    let Ok(marker) = std::env::var(EXIT_ONCE_ENV) else {
        return false;
    };
    std::fs::OpenOptions::new()
        .write(true)
        .create_new(true)
        .open(&marker)
        .is_ok()
}

/// Claims the truncation marker, mirroring [`kill_switch`]'s atomic
/// `create_new` claim.
fn truncate_switch() -> bool {
    let Ok(marker) = std::env::var(TRUNCATE_ONCE_ENV) else {
        return false;
    };
    std::fs::OpenOptions::new()
        .write(true)
        .create_new(true)
        .open(&marker)
        .is_ok()
}

/// Observer that kills the worker process mid-run (test crash injection).
struct KillOnceObserver {
    at_step: u64,
}

impl StepObserver for KillOnceObserver {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn on_step_end(&mut self, world: WorldView<'_>, _ctx: &StepContext) {
        if world.now() == self.at_step {
            sigkill_self();
        }
    }
}

fn sigkill_self() {
    let pid = std::process::id().to_string();
    let _ = Command::new("kill").args(["-9", &pid]).status();
    // `kill` missing from PATH still has to produce a crash exit.
    std::process::abort();
}

fn kill_switch(total_steps: u64) -> Option<KillOnceObserver> {
    let marker = std::env::var(KILL_ONCE_ENV).ok()?;
    match std::fs::OpenOptions::new()
        .write(true)
        .create_new(true)
        .open(&marker)
    {
        Ok(_) => Some(KillOnceObserver {
            at_step: (total_steps / 2).max(1),
        }),
        Err(_) => None,
    }
}

/// The `collabsim worker` entry point: runs one spec file through the
/// shared runner core (CLI registry, timings enabled) and writes its
/// result record to `out_path` — atomically, via a rename, so a partial
/// record can never be mistaken for a result.
///
/// With `warm_start`, the cell does not run from step 0: the snapshot is
/// re-specced onto the cell's spec ([`Snapshot::with_spec`]) and only the
/// remaining protocol is executed — the same equilibrated prefix shared
/// by every cell of a warm-started sweep. A corrupt, missing or
/// incompatible snapshot exits with the CLI's `error[snapshot]` code.
///
/// [`Snapshot::with_spec`]: collabsim::Snapshot::with_spec
pub fn run_worker(
    spec_path: &Path,
    out_path: &Path,
    warm_start: Option<&Path>,
) -> Result<(), CliError> {
    if exit_switch() {
        // Nonzero-exit injection: die with a recognisable code before
        // doing any work — no result record, no torn write, just the
        // plain "worker process reported failure" path.
        eprintln!("injected nonzero exit (code {EXIT_ONCE_CODE})");
        std::process::exit(EXIT_ONCE_CODE);
    }
    let spec = crate::runner::load_spec(spec_path)?;
    let kill = kill_switch(spec.config().phases.total_steps());
    let registry = crate::chaos::cli_registry();
    let configure = |sim: &mut collabsim::Simulation| {
        if let Some(observer) = kill {
            sim.add_observer(observer);
        }
    };
    let (outcome, _sim) = match warm_start {
        Some(snapshot_path) => {
            let base = read_snapshot_file(snapshot_path)
                .map_err(|error| crate::runner::snapshot_err(Some(snapshot_path), error))?;
            let forked = base.with_spec(&spec);
            let (mut outcome, sim) =
                crate::runner::resume_snapshot_instrumented(&forked, &registry, configure)?;
            // The forked snapshot carries the cell's own spec, so the
            // label is already the cell label; keep it authoritative.
            outcome.label = spec.label().to_string();
            (outcome, sim)
        }
        None => crate::runner::run_spec_instrumented(&spec, &registry, configure)?,
    };
    let record = render_cell_result(&WorkerResult {
        label: outcome.label.clone(),
        parameter: spec.parameter(),
        total_steps: outcome.total_steps,
        build_seconds: outcome.build_seconds,
        run_seconds: outcome.run_seconds,
        steps_per_sec: outcome.steps_per_sec,
        report_debug: format!("{:?}", outcome.report),
    });
    let io_err = |e: std::io::Error| CliError::Io {
        path: out_path.to_path_buf(),
        message: e.to_string(),
    };
    if truncate_switch() {
        // Torn-write injection: land the front few lines of the record at
        // the final path, bypassing the tmp+rename discipline, and report
        // success — the worst case the atomic rename normally rules out.
        let torn: String = record
            .lines()
            .take(3)
            .map(|line| format!("{line}\n"))
            .collect();
        std::fs::write(out_path, torn).map_err(io_err)?;
        return Ok(());
    }
    let tmp = out_path.with_extension("tmp");
    std::fs::write(&tmp, &record).map_err(io_err)?;
    std::fs::rename(&tmp, out_path).map_err(io_err)?;
    Ok(())
}

/// Coordinator configuration for one grid sweep.
pub struct GridOptions {
    /// Maximum worker subprocesses in flight.
    pub workers: usize,
    /// Crash re-queues allowed per cell before it is marked failed.
    pub retries: usize,
    /// Output directory (cell specs, result records, worker logs, the
    /// manifest).
    pub out_dir: PathBuf,
    /// The `collabsim` binary to spawn workers from (normally
    /// `std::env::current_exe()`).
    pub worker_bin: PathBuf,
    /// Suppress per-cell progress lines on stdout.
    pub quiet: bool,
    /// Snapshot every cell forks from instead of running from step 0
    /// (passed to each worker as `--warm-start`).
    pub warm_start: Option<PathBuf>,
    /// Skip cells already recorded ok in an existing `manifest.json`
    /// under the output directory; re-dispatch only failed/missing ones.
    pub resume: bool,
}

/// Terminal state of one cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellStatus {
    /// The cell produced a result record.
    Ok,
    /// Every attempt crashed.
    Failed,
}

/// One cell's entry in the manifest.
#[derive(Debug)]
pub struct CellOutcome {
    /// Position in the dispatched grid.
    pub index: usize,
    /// Cell label.
    pub label: String,
    /// Worker attempts consumed (> 1 means the cell was retried).
    pub attempts: usize,
    /// Terminal state.
    pub status: CellStatus,
    /// The parsed result record, when `status` is [`CellStatus::Ok`].
    pub result: Option<WorkerResult>,
    /// Why the last attempt failed, when `status` is
    /// [`CellStatus::Failed`].
    pub failure: Option<String>,
    /// Machine-readable failure class, when `status` is
    /// [`CellStatus::Failed`]: `"torn-record"` (the worker exited 0 but
    /// its result record is missing or unparseable), `"worker-exit"`
    /// (non-zero exit code — see `exit_code`) or `"signal"` (killed
    /// without an exit code).
    pub failure_kind: Option<&'static str>,
    /// The worker's exit code on the final attempt, when it exited
    /// normally with a non-zero code.
    pub exit_code: Option<i32>,
    /// Last lines of the final attempt's worker log, when `status` is
    /// [`CellStatus::Failed`] — the panic message or whatever the worker
    /// said before dying, inlined so the manifest is self-diagnosing.
    pub log_tail: Vec<String>,
}

/// Lines of worker log kept per failed cell.
const LOG_TAIL_LINES: usize = 5;

/// First-retry backoff; doubles per subsequent attempt of the same cell.
const RETRY_BACKOFF_BASE_MS: u64 = 50;

/// Exponent cap keeping the backoff under ~2 s however high `--retries`.
const RETRY_BACKOFF_MAX_DOUBLINGS: u32 = 5;

/// Backoff before re-queueing a cell whose `failed_attempts`th attempt
/// just crashed: 50 ms, 100 ms, 200 ms, … capped at 1.6 s.
fn retry_backoff(failed_attempts: usize) -> Duration {
    let doublings = (failed_attempts.saturating_sub(1) as u32).min(RETRY_BACKOFF_MAX_DOUBLINGS);
    Duration::from_millis(RETRY_BACKOFF_BASE_MS << doublings)
}

/// Last [`LOG_TAIL_LINES`] lines of a worker log (empty when the log is
/// missing or empty — a SIGKILL leaves nothing behind).
fn read_log_tail(path: &Path) -> Vec<String> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let lines: Vec<&str> = text.lines().collect();
    let start = lines.len().saturating_sub(LOG_TAIL_LINES);
    lines[start..].iter().map(|line| line.to_string()).collect()
}

/// The completed sweep: every cell resolved, one way or the other.
#[derive(Debug)]
pub struct GridSummary {
    /// Per-cell outcomes, in dispatch order.
    pub cells: Vec<CellOutcome>,
    /// Where the manifest was written.
    pub manifest_path: PathBuf,
    /// End-to-end wall-clock of the sweep.
    pub wall_seconds: f64,
}

impl GridSummary {
    /// Cells that completed.
    pub fn ok_count(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| c.status == CellStatus::Ok)
            .count()
    }

    /// Cells that exhausted their retries.
    pub fn failed_count(&self) -> usize {
        self.cells.len() - self.ok_count()
    }

    /// Worker attempts consumed across the sweep.
    pub fn total_attempts(&self) -> usize {
        self.cells.iter().map(|c| c.attempts).sum()
    }
}

fn describe_exit(status: &std::process::ExitStatus) -> String {
    #[cfg(unix)]
    {
        use std::os::unix::process::ExitStatusExt;
        if let Some(signal) = status.signal() {
            return format!("killed by signal {signal}");
        }
    }
    match status.code() {
        Some(code) => format!("exit code {code}"),
        None => "unknown exit status".to_string(),
    }
}

/// Runs `specs` as a crash-isolated multi-process sweep and writes
/// `manifest.json` under the output directory. Individual cell failures
/// never fail the sweep — callers inspect the summary (or pass the CLI's
/// `--strict`) to turn failures into a non-zero exit.
pub fn run_grid(specs: &[ScenarioSpec], options: &GridOptions) -> Result<GridSummary, CliError> {
    if options.workers == 0 {
        return Err(CliError::InvalidFlag {
            flag: "--workers".into(),
            value: "0".into(),
            expected: "a worker count ≥ 1".into(),
        });
    }
    let grid_err = |message: String| CliError::Grid { message };
    let cells_dir = options.out_dir.join("cells");
    let results_dir = options.out_dir.join("results");
    let logs_dir = options.out_dir.join("logs");
    for dir in [&cells_dir, &results_dir, &logs_dir] {
        std::fs::create_dir_all(dir).map_err(|e| CliError::Io {
            path: dir.clone(),
            message: e.to_string(),
        })?;
    }

    let total = specs.len();
    let mut spec_paths = Vec::with_capacity(total);
    let mut result_paths = Vec::with_capacity(total);
    for (i, spec) in specs.iter().enumerate() {
        let spec_path = cells_dir.join(format!("{i:03}.spec"));
        std::fs::write(&spec_path, spec.to_text()).map_err(|e| CliError::Io {
            path: spec_path.clone(),
            message: e.to_string(),
        })?;
        spec_paths.push(spec_path);
        result_paths.push(results_dir.join(format!("{i:03}.result")));
    }

    let started = Instant::now();
    let mut attempts = vec![0usize; total];
    let mut outcomes: Vec<Option<CellOutcome>> = Vec::with_capacity(total);
    outcomes.resize_with(total, || None);
    let mut completed = 0usize;

    // `--resume`: trust a cell from the previous sweep only when the old
    // manifest says ok, its result record still parses, and the record's
    // label matches the spec we would dispatch — anything less (missing,
    // torn, relabelled) is re-dispatched like a fresh cell.
    if options.resume {
        for (i, prior_attempts) in manifest_ok_cells(&options.out_dir.join("manifest.json")) {
            if i >= total || outcomes[i].is_some() {
                continue;
            }
            let Some(result) = std::fs::read_to_string(&result_paths[i])
                .ok()
                .and_then(|text| parse_cell_result(&text))
            else {
                continue;
            };
            if result.label != specs[i].label() {
                continue;
            }
            completed += 1;
            if !options.quiet {
                println!(
                    "[{completed}/{total}] {} — skipped (already ok in manifest)",
                    result.label
                );
            }
            outcomes[i] = Some(CellOutcome {
                index: i,
                label: result.label.clone(),
                attempts: prior_attempts,
                status: CellStatus::Ok,
                result: Some(result),
                failure: None,
                failure_kind: None,
                exit_code: None,
                log_tail: Vec::new(),
            });
        }
    }

    let mut pending: VecDeque<usize> = (0..total).filter(|&i| outcomes[i].is_none()).collect();
    let mut backoff: Vec<(Instant, usize)> = Vec::new();
    let mut running: Vec<(usize, Child)> = Vec::new();

    while completed < total {
        // Cells whose retry backoff has elapsed become dispatchable again.
        let now = Instant::now();
        let mut k = 0;
        while k < backoff.len() {
            if backoff[k].0 <= now {
                let (_, i) = backoff.swap_remove(k);
                pending.push_back(i);
            } else {
                k += 1;
            }
        }

        while running.len() < options.workers {
            let Some(i) = pending.pop_front() else { break };
            attempts[i] += 1;
            let _ = std::fs::remove_file(&result_paths[i]);
            let log_path = logs_dir.join(format!("{i:03}.attempt{}.log", attempts[i]));
            let log = std::fs::File::create(&log_path).map_err(|e| CliError::Io {
                path: log_path.clone(),
                message: e.to_string(),
            })?;
            let log_err = log
                .try_clone()
                .map_err(|e| grid_err(format!("cannot clone log handle: {e}")))?;
            let mut command = Command::new(&options.worker_bin);
            command
                .arg("worker")
                .arg("--spec")
                .arg(&spec_paths[i])
                .arg("--out")
                .arg(&result_paths[i]);
            if let Some(warm) = &options.warm_start {
                command.arg("--warm-start").arg(warm);
            }
            let child = command
                .stdin(Stdio::null())
                .stdout(Stdio::from(log))
                .stderr(Stdio::from(log_err))
                .spawn()
                .map_err(|e| {
                    grid_err(format!(
                        "cannot spawn worker `{}`: {e}",
                        options.worker_bin.display()
                    ))
                })?;
            running.push((i, child));
        }

        let mut progressed = false;
        let mut j = 0;
        while j < running.len() {
            let exit = running[j]
                .1
                .try_wait()
                .map_err(|e| grid_err(format!("cannot poll worker: {e}")))?;
            let Some(status) = exit else {
                j += 1;
                continue;
            };
            let (i, _) = running.swap_remove(j);
            progressed = true;
            let label = specs[i].label().to_string();
            let parsed = std::fs::read_to_string(&result_paths[i])
                .ok()
                .and_then(|text| parse_cell_result(&text));
            match parsed.filter(|_| status.success()) {
                Some(result) => {
                    completed += 1;
                    if !options.quiet {
                        println!(
                            "[{completed}/{total}] {label} — ok ({:.2}s, {:.0} steps/sec, attempt {})",
                            result.run_seconds, result.steps_per_sec, attempts[i]
                        );
                    }
                    outcomes[i] = Some(CellOutcome {
                        index: i,
                        label,
                        attempts: attempts[i],
                        status: CellStatus::Ok,
                        result: Some(result),
                        failure: None,
                        failure_kind: None,
                        exit_code: None,
                        log_tail: Vec::new(),
                    });
                }
                None => {
                    // A clean exit without a parseable record is a torn
                    // write — a different diagnosis (and fix) than a
                    // worker that reported failure through its exit code
                    // or died to a signal; keep the classes apart all the
                    // way into the manifest.
                    let (why, kind, exit_code) = if status.success() {
                        (
                            "worker exited 0 without a parseable result record".to_string(),
                            "torn-record",
                            None,
                        )
                    } else if let Some(code) = status.code() {
                        (
                            format!("worker crashed ({})", describe_exit(&status)),
                            "worker-exit",
                            Some(code),
                        )
                    } else {
                        (
                            format!("worker crashed ({})", describe_exit(&status)),
                            "signal",
                            None,
                        )
                    };
                    if attempts[i] <= options.retries {
                        let delay = retry_backoff(attempts[i]);
                        if !options.quiet {
                            println!(
                                "{label} — {why}; re-queued after {} ms backoff (attempt {} of {})",
                                delay.as_millis(),
                                attempts[i] + 1,
                                options.retries + 1
                            );
                        }
                        backoff.push((Instant::now() + delay, i));
                    } else {
                        completed += 1;
                        if !options.quiet {
                            println!(
                                "[{completed}/{total}] {label} — FAILED after {} attempts: {why}",
                                attempts[i]
                            );
                        }
                        let log_path = logs_dir.join(format!("{i:03}.attempt{}.log", attempts[i]));
                        outcomes[i] = Some(CellOutcome {
                            index: i,
                            label,
                            attempts: attempts[i],
                            status: CellStatus::Failed,
                            result: None,
                            failure: Some(why),
                            failure_kind: Some(kind),
                            exit_code,
                            log_tail: read_log_tail(&log_path),
                        });
                    }
                }
            }
        }
        if !progressed {
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    let cells: Vec<CellOutcome> = outcomes
        .into_iter()
        .map(|outcome| outcome.expect("every cell resolved"))
        .collect();
    let summary = GridSummary {
        manifest_path: options.out_dir.join("manifest.json"),
        wall_seconds: started.elapsed().as_secs_f64(),
        cells,
    };
    let manifest = render_manifest(&summary, options);
    std::fs::write(&summary.manifest_path, manifest).map_err(|e| CliError::Io {
        path: summary.manifest_path.clone(),
        message: e.to_string(),
    })?;
    Ok(summary)
}

/// Scrapes `(index, attempts)` of every `"status": "ok"` cell from a
/// previous sweep's manifest (the same line-oriented scraping the
/// baseline gates use — the offline build has no JSON parser). A missing
/// or unparseable manifest yields no skippable cells, which degrades
/// `--resume` to a full re-run rather than an error.
fn manifest_ok_cells(manifest_path: &Path) -> Vec<(usize, usize)> {
    let Ok(text) = std::fs::read_to_string(manifest_path) else {
        return Vec::new();
    };
    text.lines()
        .filter(|line| line.contains("\"status\": \"ok\""))
        .filter_map(|line| {
            let index = crate::runner::extract_number(line, "index")?;
            let attempts = crate::runner::extract_number(line, "attempts")?;
            if index < 0.0 || attempts < 0.0 {
                return None;
            }
            Some((index as usize, attempts as usize))
        })
        .collect()
}

/// Renders the partial-results manifest as JSON.
fn render_manifest(summary: &GridSummary, options: &GridOptions) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(
        out,
        "  \"grid\": {{\"cells\": {}, \"workers\": {}, \"retries\": {}}},",
        summary.cells.len(),
        options.workers,
        options.retries
    );
    let _ = writeln!(
        out,
        "  \"ok\": {}, \"failed\": {}, \"attempts\": {}, \"wall_seconds\": {},",
        summary.ok_count(),
        summary.failed_count(),
        summary.total_attempts(),
        json_f64(summary.wall_seconds)
    );
    out.push_str("  \"cells\": [\n");
    for (i, cell) in summary.cells.iter().enumerate() {
        let sep = if i + 1 < summary.cells.len() { "," } else { "" };
        let common = format!(
            "\"index\": {}, \"label\": \"{}\", \"attempts\": {}, \"spec\": \"cells/{:03}.spec\"",
            cell.index,
            json_escape(&cell.label),
            cell.attempts,
            cell.index
        );
        match (&cell.result, &cell.failure) {
            (Some(result), _) => {
                let _ = writeln!(
                    out,
                    "    {{{common}, \"status\": \"ok\", \"result\": \"results/{:03}.result\", \
                     \"total_steps\": {}, \"run_seconds\": {}, \"steps_per_sec\": {}}}{sep}",
                    cell.index,
                    result.total_steps,
                    json_f64(result.run_seconds),
                    json_f64(result.steps_per_sec)
                );
            }
            (None, failure) => {
                let error = failure.as_deref().unwrap_or("unknown failure");
                let kind = cell.failure_kind.unwrap_or("unknown");
                let exit_code = match cell.exit_code {
                    Some(code) => code.to_string(),
                    None => "null".to_string(),
                };
                let tail = cell
                    .log_tail
                    .iter()
                    .map(|line| format!("\"{}\"", json_escape(line)))
                    .collect::<Vec<_>>()
                    .join(", ");
                let _ = writeln!(
                    out,
                    "    {{{common}, \"status\": \"failed\", \"error\": \"{}\", \
                     \"failure_kind\": \"{}\", \"exit_code\": {exit_code}, \
                     \"log\": \"logs/{:03}.attempt{}.log\", \"log_tail\": [{tail}]}}{sep}",
                    json_escape(error),
                    json_escape(kind),
                    cell.index,
                    cell.attempts
                );
            }
        }
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_result_records_round_trip() {
        let result = WorkerResult {
            label: "altruistic=40%".to_string(),
            parameter: 40.0,
            total_steps: 60,
            build_seconds: 0.012345678901234567,
            run_seconds: 1.5,
            steps_per_sec: 40.0,
            report_debug: "SimulationReport { shared_bandwidth: 0.5, seed: 1 }".to_string(),
        };
        let text = render_cell_result(&result);
        assert!(text.starts_with(CELL_RESULT_HEADER));
        assert_eq!(parse_cell_result(&text), Some(result));
    }

    #[test]
    fn truncated_records_do_not_parse() {
        let result = WorkerResult {
            label: "x".into(),
            parameter: 0.0,
            total_steps: 1,
            build_seconds: 0.0,
            run_seconds: 1.0,
            steps_per_sec: 1.0,
            report_debug: "SimulationReport { }".into(),
        };
        let text = render_cell_result(&result);
        let truncated = &text[..text.len() / 2];
        assert_eq!(parse_cell_result(truncated), None);
        assert_eq!(parse_cell_result("not a record"), None);
        assert_eq!(parse_cell_result(""), None);
    }
}
