//! Subcommand implementations shared by the `collabsim` binary.

use crate::args::{Command, GridArgs, ResumeArgs, RunArgs, ScaffoldArgs, USAGE};
use crate::coordinator::{CellStatus, GridOptions};
use crate::error::CliError;
use crate::jsonl::{JsonlObserver, JsonlSink};
use crate::{args, chaos, coordinator, profile, runner, scenarios};
use collabsim::snapshot::read_snapshot_file;
use std::path::{Path, PathBuf};

/// Parses and executes one command line, returning the process exit code.
pub fn dispatch(argv: &[String]) -> Result<i32, CliError> {
    match args::parse(argv)? {
        Command::Help => {
            print!("{USAGE}");
            Ok(0)
        }
        Command::Run(run) => cmd_run(run),
        Command::Resume(resume) => cmd_resume(resume),
        Command::Grid(grid) => cmd_grid(grid),
        Command::Worker(worker) => {
            coordinator::run_worker(&worker.spec, &worker.out, worker.warm_start.as_deref())?;
            Ok(0)
        }
        Command::Scaffold(scaffold) => cmd_scaffold(scaffold),
    }
}

fn set_scenario_threads(threads: Option<usize>) {
    if let Some(threads) = threads {
        std::env::set_var("SCENARIO_THREADS", threads.to_string());
    }
}

fn cmd_run(run: RunArgs) -> Result<i32, CliError> {
    set_scenario_threads(run.threads);
    let spec = runner::load_spec_with_overrides(&run.spec, &run.sets)?;
    let registry = chaos::cli_registry();

    // When JSONL owns stdout, the human-readable summary moves to stderr
    // so the stream stays machine-parseable line by line.
    let jsonl_to_stdout = run.jsonl.as_deref() == Some("-");
    let say = |line: &str| {
        if jsonl_to_stdout {
            eprintln!("{line}");
        } else {
            println!("{line}");
        }
    };

    let total_steps = spec.config().phases.total_steps();
    let observer = match &run.jsonl {
        Some(target) => Some(JsonlObserver::new(
            JsonlSink::open(target)?,
            spec.label(),
            total_steps,
            run.every,
        )),
        None => None,
    };

    say(&format!(
        "running `{}` ({} peers, {} steps)",
        spec.label(),
        spec.config().population,
        total_steps
    ));
    let (outcome, sim) = match (run.checkpoint_every, &run.store) {
        (Some(every), Some(store_dir)) => {
            let (outcome, sim, keys) =
                runner::run_spec_checkpointed(&spec, &registry, every, store_dir, |sim| {
                    if let Some(observer) = observer {
                        sim.add_observer(observer);
                    }
                })?;
            say(&format!(
                "checkpoints: {} snapshots every {} steps in {}",
                keys.len(),
                every,
                store_dir.display()
            ));
            for key in &keys {
                say(&format!("  checkpoint {key}"));
            }
            (outcome, sim)
        }
        _ => runner::run_spec_instrumented(&spec, &registry, |sim| {
            if let Some(observer) = observer {
                sim.add_observer(observer);
            }
        })?,
    };
    say(&format!("build: {:.3}s", outcome.build_seconds));
    for line in profile::render_profile(
        outcome.total_steps,
        outcome.run_seconds,
        sim.phase_timings(),
    )
    .lines()
    {
        say(line);
    }

    if run.print_report {
        println!("{:?}", outcome.report);
    }

    if let Some(baseline) = &run.baseline {
        let reference = runner::baseline_number(baseline, "steps_per_sec")?;
        let floor = reference * (1.0 - run.max_regress / 100.0);
        let ok = outcome.steps_per_sec >= floor;
        say(&format!(
            "{}: {:.2} steps/sec vs baseline {:.2} (floor {:.2}) — {}",
            outcome.label,
            outcome.steps_per_sec,
            reference,
            floor,
            if ok { "ok" } else { "REGRESSION" }
        ));
        if !ok {
            return Ok(1);
        }
    }
    Ok(0)
}

fn cmd_resume(resume: ResumeArgs) -> Result<i32, CliError> {
    set_scenario_threads(resume.threads);
    let snapshot = read_snapshot_file(&resume.snapshot)
        .map_err(|error| runner::snapshot_err(Some(&resume.snapshot), error))?;
    println!(
        "resuming {} from step {}",
        resume.snapshot.display(),
        snapshot.state.step
    );
    let registry = chaos::cli_registry();
    let (outcome, sim) = runner::resume_snapshot_instrumented(&snapshot, &registry, |_| {})?;
    println!(
        "finished `{}` ({} steps remained)",
        outcome.label, outcome.total_steps
    );
    println!("restore: {:.3}s", outcome.build_seconds);
    for line in profile::render_profile(
        outcome.total_steps,
        outcome.run_seconds,
        sim.phase_timings(),
    )
    .lines()
    {
        println!("{line}");
    }
    if resume.print_report {
        println!("{:?}", outcome.report);
    }
    Ok(0)
}

/// Expands the `grid` positionals: a file is taken as-is, a directory is
/// walked recursively for `*.spec` files (sorted, for a stable cell
/// order).
fn collect_spec_paths(inputs: &[PathBuf]) -> Result<Vec<PathBuf>, CliError> {
    fn walk(dir: &Path, into: &mut Vec<PathBuf>) -> Result<(), CliError> {
        let entries = std::fs::read_dir(dir).map_err(|e| CliError::Io {
            path: dir.to_path_buf(),
            message: e.to_string(),
        })?;
        let mut paths: Vec<PathBuf> = entries
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .collect();
        paths.sort();
        for path in paths {
            if path.is_dir() {
                walk(&path, into)?;
            } else if path.extension().is_some_and(|ext| ext == "spec") {
                into.push(path);
            }
        }
        Ok(())
    }

    let mut specs = Vec::new();
    for input in inputs {
        if input.is_dir() {
            walk(input, &mut specs)?;
        } else if input.is_file() {
            specs.push(input.clone());
        } else {
            return Err(CliError::Io {
                path: input.clone(),
                message: "no such file or directory".to_string(),
            });
        }
    }
    if specs.is_empty() {
        return Err(CliError::Grid {
            message: "no .spec files found under the given paths".to_string(),
        });
    }
    Ok(specs)
}

fn cmd_grid(grid: GridArgs) -> Result<i32, CliError> {
    set_scenario_threads(grid.threads);
    let paths = collect_spec_paths(&grid.specs)?;
    let specs = paths
        .iter()
        .map(|path| runner::load_spec(path))
        .collect::<Result<Vec<_>, _>>()?;
    let worker_bin = std::env::current_exe().map_err(|e| CliError::Grid {
        message: format!("cannot locate the collabsim binary: {e}"),
    })?;
    let workers = grid.workers.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(specs.len().max(1))
    });
    if let Some(warm) = &grid.warm_start {
        // Fail fast with a typed error[snapshot] before dispatching
        // anything — a bad snapshot would otherwise fail all cells.
        let snapshot =
            read_snapshot_file(warm).map_err(|error| runner::snapshot_err(Some(warm), error))?;
        println!(
            "warm start: every cell forks from {} (step {})",
            warm.display(),
            snapshot.state.step
        );
    }
    println!(
        "grid: {} cells, {} workers, {} retries → {}",
        specs.len(),
        workers,
        grid.retries,
        grid.out_dir.display()
    );
    let summary = coordinator::run_grid(
        &specs,
        &GridOptions {
            workers,
            retries: grid.retries,
            out_dir: grid.out_dir.clone(),
            worker_bin,
            quiet: false,
            warm_start: grid.warm_start.clone(),
            resume: grid.resume,
        },
    )?;
    println!(
        "sweep done in {:.2}s: {} ok, {} failed, {} attempts (manifest: {})",
        summary.wall_seconds,
        summary.ok_count(),
        summary.failed_count(),
        summary.total_attempts(),
        summary.manifest_path.display()
    );
    for cell in &summary.cells {
        if cell.status == CellStatus::Failed {
            println!(
                "  failed: {} ({})",
                cell.label,
                cell.failure.as_deref().unwrap_or("unknown")
            );
        }
    }
    if grid.strict && summary.failed_count() > 0 {
        return Ok(1);
    }
    Ok(0)
}

fn cmd_scaffold(scaffold: ScaffoldArgs) -> Result<i32, CliError> {
    let written = scenarios::scaffold(&scaffold.dir).map_err(|e| CliError::Io {
        path: scaffold.dir.clone(),
        message: e.to_string(),
    })?;
    println!(
        "wrote {} spec files under {}",
        written.len(),
        scaffold.dir.display()
    );
    Ok(0)
}
