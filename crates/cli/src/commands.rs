//! Subcommand implementations shared by the `collabsim` binary.

use crate::args::{Command, GridArgs, ResumeArgs, RunArgs, ScaffoldArgs, TrainArgs, USAGE};
use crate::coordinator::{CellStatus, GridOptions};
use crate::error::CliError;
use crate::jsonl::{JsonlObserver, JsonlSink};
use crate::{args, chaos, coordinator, profile, runner, scenarios, training};
use collabsim::snapshot::{read_snapshot_file, write_snapshot_file};
use std::path::{Path, PathBuf};

/// Parses and executes one command line, returning the process exit code.
pub fn dispatch(argv: &[String]) -> Result<i32, CliError> {
    match args::parse(argv)? {
        Command::Help => {
            print!("{USAGE}");
            Ok(0)
        }
        Command::Run(run) => cmd_run(run),
        Command::Resume(resume) => cmd_resume(resume),
        Command::Grid(grid) => cmd_grid(grid),
        Command::Worker(worker) => {
            coordinator::run_worker(&worker.spec, &worker.out, worker.warm_start.as_deref())?;
            Ok(0)
        }
        Command::Scaffold(scaffold) => cmd_scaffold(scaffold),
        Command::Train(train) => cmd_train(train),
    }
}

fn set_scenario_threads(threads: Option<usize>) {
    if let Some(threads) = threads {
        std::env::set_var("SCENARIO_THREADS", threads.to_string());
    }
}

fn cmd_run(run: RunArgs) -> Result<i32, CliError> {
    set_scenario_threads(run.threads);
    let spec = runner::load_spec_with_overrides(&run.spec, &run.sets)?;
    let registry = chaos::cli_registry();

    // When JSONL owns stdout, the human-readable summary moves to stderr
    // so the stream stays machine-parseable line by line.
    let jsonl_to_stdout = run.jsonl.as_deref() == Some("-");
    let say = |line: &str| {
        if jsonl_to_stdout {
            eprintln!("{line}");
        } else {
            println!("{line}");
        }
    };

    let total_steps = spec.config().phases.total_steps();
    let observer = match &run.jsonl {
        Some(target) => Some(JsonlObserver::new(
            JsonlSink::open(target)?,
            spec.label(),
            total_steps,
            run.every,
        )),
        None => None,
    };

    say(&format!(
        "running `{}` ({} peers, {} steps)",
        spec.label(),
        spec.config().population,
        total_steps
    ));
    let (outcome, sim) = match (run.checkpoint_every, &run.store) {
        (Some(every), Some(store_dir)) => {
            let (outcome, sim, keys) =
                runner::run_spec_checkpointed(&spec, &registry, every, store_dir, |sim| {
                    if let Some(observer) = observer {
                        sim.add_observer(observer);
                    }
                })?;
            say(&format!(
                "checkpoints: {} snapshots every {} steps in {}",
                keys.len(),
                every,
                store_dir.display()
            ));
            for key in &keys {
                say(&format!("  checkpoint {key}"));
            }
            (outcome, sim)
        }
        _ => runner::run_spec_instrumented(&spec, &registry, |sim| {
            if let Some(observer) = observer {
                sim.add_observer(observer);
            }
        })?,
    };
    say(&format!("build: {:.3}s", outcome.build_seconds));
    for line in profile::render_profile(
        outcome.total_steps,
        outcome.run_seconds,
        sim.phase_timings(),
    )
    .lines()
    {
        say(line);
    }

    if run.print_report {
        println!("{:?}", outcome.report);
    }

    if let Some(baseline) = &run.baseline {
        let reference = runner::baseline_number(baseline, "steps_per_sec")?;
        let floor = reference * (1.0 - run.max_regress / 100.0);
        let ok = outcome.steps_per_sec >= floor;
        say(&format!(
            "{}: {:.2} steps/sec vs baseline {:.2} (floor {:.2}) — {}",
            outcome.label,
            outcome.steps_per_sec,
            reference,
            floor,
            if ok { "ok" } else { "REGRESSION" }
        ));
        if !ok {
            return Ok(1);
        }
    }
    Ok(0)
}

fn cmd_resume(resume: ResumeArgs) -> Result<i32, CliError> {
    set_scenario_threads(resume.threads);
    let snapshot = read_snapshot_file(&resume.snapshot)
        .map_err(|error| runner::snapshot_err(Some(&resume.snapshot), error))?;
    println!(
        "resuming {} from step {}",
        resume.snapshot.display(),
        snapshot.state.step
    );
    let registry = chaos::cli_registry();
    let (outcome, sim) = runner::resume_snapshot_instrumented(&snapshot, &registry, |_| {})?;
    println!(
        "finished `{}` ({} steps remained)",
        outcome.label, outcome.total_steps
    );
    println!("restore: {:.3}s", outcome.build_seconds);
    for line in profile::render_profile(
        outcome.total_steps,
        outcome.run_seconds,
        sim.phase_timings(),
    )
    .lines()
    {
        println!("{line}");
    }
    if resume.print_report {
        println!("{:?}", outcome.report);
    }
    Ok(0)
}

/// Expands the `grid` positionals: a file is taken as-is, a directory is
/// walked recursively for `*.spec` files (sorted, for a stable cell
/// order).
fn collect_spec_paths(inputs: &[PathBuf]) -> Result<Vec<PathBuf>, CliError> {
    fn walk(dir: &Path, into: &mut Vec<PathBuf>) -> Result<(), CliError> {
        let entries = std::fs::read_dir(dir).map_err(|e| CliError::Io {
            path: dir.to_path_buf(),
            message: e.to_string(),
        })?;
        let mut paths: Vec<PathBuf> = entries
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .collect();
        paths.sort();
        for path in paths {
            if path.is_dir() {
                walk(&path, into)?;
            } else if path.extension().is_some_and(|ext| ext == "spec") {
                into.push(path);
            }
        }
        Ok(())
    }

    let mut specs = Vec::new();
    for input in inputs {
        if input.is_dir() {
            walk(input, &mut specs)?;
        } else if input.is_file() {
            specs.push(input.clone());
        } else {
            return Err(CliError::Io {
                path: input.clone(),
                message: "no such file or directory".to_string(),
            });
        }
    }
    if specs.is_empty() {
        return Err(CliError::Grid {
            message: "no .spec files found under the given paths".to_string(),
        });
    }
    Ok(specs)
}

fn cmd_grid(grid: GridArgs) -> Result<i32, CliError> {
    set_scenario_threads(grid.threads);
    let paths = collect_spec_paths(&grid.specs)?;
    let specs = paths
        .iter()
        .map(|path| runner::load_spec(path))
        .collect::<Result<Vec<_>, _>>()?;
    let worker_bin = std::env::current_exe().map_err(|e| CliError::Grid {
        message: format!("cannot locate the collabsim binary: {e}"),
    })?;
    let workers = grid.workers.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(specs.len().max(1))
    });
    if let Some(warm) = &grid.warm_start {
        // Fail fast with a typed error[snapshot] before dispatching
        // anything — a bad snapshot would otherwise fail all cells.
        let snapshot =
            read_snapshot_file(warm).map_err(|error| runner::snapshot_err(Some(warm), error))?;
        println!(
            "warm start: every cell forks from {} (step {})",
            warm.display(),
            snapshot.state.step
        );
    }
    println!(
        "grid: {} cells, {} workers, {} retries → {}",
        specs.len(),
        workers,
        grid.retries,
        grid.out_dir.display()
    );
    let summary = coordinator::run_grid(
        &specs,
        &GridOptions {
            workers,
            retries: grid.retries,
            out_dir: grid.out_dir.clone(),
            worker_bin,
            quiet: false,
            warm_start: grid.warm_start.clone(),
            resume: grid.resume,
        },
    )?;
    println!(
        "sweep done in {:.2}s: {} ok, {} failed, {} attempts (manifest: {})",
        summary.wall_seconds,
        summary.ok_count(),
        summary.failed_count(),
        summary.total_attempts(),
        summary.manifest_path.display()
    );
    for cell in &summary.cells {
        if cell.status == CellStatus::Failed {
            println!(
                "  failed: {} ({})",
                cell.label,
                cell.failure.as_deref().unwrap_or("unknown")
            );
        }
    }
    if grid.strict && summary.failed_count() > 0 {
        return Ok(1);
    }
    Ok(0)
}

fn cmd_train(train: TrainArgs) -> Result<i32, CliError> {
    set_scenario_threads(train.threads);
    let mut scale = training::arms_scale(train.quick);
    if let Some(episodes) = train.episodes {
        scale.episodes = episodes;
    }
    let panel: Vec<(&str, &str)> = training::ARMS_DEFENCES
        .iter()
        .copied()
        .filter(|(key, _)| train.defences.is_empty() || train.defences.iter().any(|d| d == key))
        .collect();
    if panel.is_empty() {
        let known = training::ARMS_DEFENCES
            .iter()
            .map(|(key, _)| *key)
            .collect::<Vec<_>>()
            .join(", ");
        return Err(CliError::Usage(format!(
            "no defence matches {:?} (known: {known})",
            train.defences
        )));
    }
    let worker_bin = std::env::current_exe().map_err(|e| CliError::Grid {
        message: format!("cannot locate the collabsim binary: {e}"),
    })?;

    let started = std::time::Instant::now();
    let (base, checkpoint) = training::equilibrate_base(&scale)?;
    println!(
        "base `{}`: {} peers equilibrated through step {} in {:.2}s",
        base.label(),
        scale.population,
        checkpoint.state.step,
        started.elapsed().as_secs_f64()
    );

    let mut rows = Vec::new();
    for defence in panel {
        let arm_started = std::time::Instant::now();
        let trained = training::train_against(
            &checkpoint,
            &training::arms_train_spec(&scale, defence),
            scale.episodes,
        )?;
        println!(
            "train {}: {} episodes, {} q-updates, {} visited q-cells ({:.2}s)",
            defence.0,
            scale.episodes,
            trained.updates,
            trained.visited_cells,
            arm_started.elapsed().as_secs_f64()
        );

        let frozen_spec = training::arms_frozen_spec(&scale, defence);
        let scripted_spec = training::arms_scripted_spec(&scale, defence);
        let frozen = training::frozen_snapshot(&checkpoint, &frozen_spec, &trained.policies);
        let snap_path = train
            .out_dir
            .join("snapshots")
            .join(format!("{}.snap", defence.0));
        write_snapshot_file(&snap_path, &frozen)
            .map_err(|error| runner::snapshot_err(Some(&snap_path), error))?;
        println!("  frozen policy snapshot: {}", snap_path.display());

        let trained_outcome = training::evaluate_fork(&frozen)?;
        let scripted_outcome = training::evaluate_fork(&checkpoint.with_spec(&scripted_spec))?;

        // Dispatch the frozen and scripted evaluation cells through the
        // multi-process grid coordinator, warm-started from the frozen
        // snapshot, and cross-check every worker report byte for byte
        // against the in-process replay of the identical fork.
        let summary = coordinator::run_grid(
            &[frozen_spec.clone(), scripted_spec.clone()],
            &GridOptions {
                workers: train.workers.unwrap_or(2),
                retries: 1,
                out_dir: train.out_dir.join(format!("grid-{}", defence.0)),
                worker_bin: worker_bin.clone(),
                quiet: true,
                warm_start: Some(snap_path.clone()),
                resume: false,
            },
        )?;
        for cell in &summary.cells {
            let result = cell.result.as_ref().ok_or_else(|| CliError::Grid {
                message: format!(
                    "evaluation cell `{}` failed: {}",
                    cell.label,
                    cell.failure.as_deref().unwrap_or("unknown")
                ),
            })?;
            let cell_spec = if cell.label == frozen_spec.label() {
                &frozen_spec
            } else {
                &scripted_spec
            };
            let expected = training::evaluate_fork(&frozen.with_spec(cell_spec))?;
            if result.report_debug != format!("{:?}", expected.report) {
                return Err(CliError::Grid {
                    message: format!(
                        "worker report for `{}` diverges from the in-process replay",
                        cell.label
                    ),
                });
            }
        }
        println!(
            "  cross-process: {} worker reports byte-identical to the in-process replay",
            summary.cells.len()
        );
        rows.push((defence.0, trained, trained_outcome, scripted_outcome));
    }

    println!();
    println!(
        "{:<24} {:>14} {:>15} {:>9} {:>9}",
        "defence", "trained-damage", "scripted-damage", "retained", "updates"
    );
    for (key, trained, trained_outcome, scripted_outcome) in &rows {
        println!(
            "{:<24} {:>14.2} {:>15.2} {:>9.3} {:>9}",
            key,
            trained_outcome.damage(),
            scripted_outcome.damage(),
            trained_outcome.metrics.mean_reputation_retained(),
            trained.updates
        );
    }
    let wins = rows
        .iter()
        .filter(|(_, _, trained_outcome, scripted_outcome)| {
            trained_outcome.damage() > scripted_outcome.damage()
        })
        .count();
    println!(
        "trained attacker out-damages the scripted whitewasher on {wins}/{} defences",
        rows.len()
    );
    Ok(0)
}

fn cmd_scaffold(scaffold: ScaffoldArgs) -> Result<i32, CliError> {
    let written = scenarios::scaffold(&scaffold.dir).map_err(|e| CliError::Io {
        path: scaffold.dir.clone(),
        message: e.to_string(),
    })?;
    println!(
        "wrote {} spec files under {}",
        written.len(),
        scaffold.dir.display()
    );
    Ok(0)
}
