//! The `collabsim` binary: see [`collabsim_cli`] for the full
//! subcommand reference (`collabsim help` prints it).

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match collabsim_cli::dispatch(&argv) {
        Ok(code) => std::process::exit(code),
        Err(error) => {
            eprintln!("collabsim: {error}");
            std::process::exit(error.exit_code());
        }
    }
}
