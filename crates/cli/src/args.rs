//! Hand-rolled argument parsing for the `collabsim` binary (the offline
//! build has no clap), producing typed [`CliError`]s for every mistake.

use crate::error::CliError;
use std::path::PathBuf;
use std::str::FromStr;

/// The CLI usage text.
pub const USAGE: &str = "\
collabsim — scenario runner for the Bocek et al. (IPDPS 2008) wiki simulation

USAGE:
  collabsim run <spec-file> [options]      run one scenario spec
  collabsim resume <snapshot> [options]    finish a checkpointed run from a .snap file
  collabsim grid <spec|dir>... [options]   run many specs as a multi-process sweep
  collabsim worker --spec <f> --out <f>    run one cell, emit a result record (internal)
  collabsim scaffold [--dir <dir>]         (re)generate the scenarios/ tree
  collabsim train [options]                run the learning-adversary arms race
  collabsim help                           show this help

RUN OPTIONS:
  --jsonl <path|->      stream StepObserver metrics as JSON lines (- = stdout;
                        the human summary moves to stderr)
  --every <n>           emit a step event every n steps (default 1)
  --print-report        print the report's Debug line to stdout (byte-stable)
  --set <key=value>     override a spec key (repeatable; later keys win)
  --baseline <path>     gate steps/sec against a bench JSON baseline
  --max-regress <pct>   tolerated steps/sec drop for --baseline (default 20)
  --threads <n>         set SCENARIO_THREADS for this run
  --checkpoint-every <n>  write a snapshot to the run store every n steps
                        (requires --store)
  --store <dir>         the on-disk run store (a directory of .snap files)
                        receiving --checkpoint-every snapshots

RESUME OPTIONS:
  --print-report        print the report's Debug line to stdout (byte-stable;
                        identical to the uninterrupted run's)
  --threads <n>         set SCENARIO_THREADS for this run

GRID OPTIONS:
  --workers <n>         worker subprocesses in flight (default: CPU count)
  --retries <n>         crash re-queues per cell before it is marked failed
                        (default 1)
  --out-dir <dir>       sweep output directory (default grid-out)
  --strict              exit non-zero if any cell ends up failed
  --threads <n>         SCENARIO_THREADS for every worker
  --warm-start <snap>   fork every cell from this snapshot instead of
                        running it from step 0 (cells must describe the
                        same population)
  --resume              skip cells already recorded ok in <out-dir>'s
                        manifest.json; re-dispatch only failed/missing ones

TRAIN OPTIONS:
  --quick               smaller population and fewer episodes per defence
  --episodes <n>        override training episodes per defence
  --out-dir <dir>       snapshots + evaluation grids directory (default
                        arms-out)
  --defence <key>       restrict to one defence (repeatable; default: the
                        full panel — ledger, eigentrust,
                        eigentrust-pretrusted, gossip, uptime-discount)
  --workers <n>         worker subprocesses for the evaluation grids
  --threads <n>         set SCENARIO_THREADS for this run

`train` equilibrates one adversary-free base population, runs episodic
Q-learning against each defence, freezes the learned policy (α = 0), and
evaluates the frozen and scripted attackers through the multi-process grid
coordinator — cross-checking every worker report against the in-process
replay byte for byte.

Cell crashes never abort a sweep: crashed cells are retried, then recorded
in <out-dir>/manifest.json as failed alongside the completed results.
Corrupt or version-mismatched snapshots exit with error[snapshot], code 3.
";

/// Parsed `collabsim run` arguments.
#[derive(Debug)]
pub struct RunArgs {
    /// The spec file.
    pub spec: PathBuf,
    /// `--jsonl` target (`-` = stdout), if requested.
    pub jsonl: Option<String>,
    /// Step-event stride.
    pub every: u64,
    /// Print the report Debug line to stdout.
    pub print_report: bool,
    /// `--set key=value` overrides, in order.
    pub sets: Vec<(String, String)>,
    /// `--baseline` file, if gating.
    pub baseline: Option<PathBuf>,
    /// Tolerated steps/sec drop (percent).
    pub max_regress: f64,
    /// `--threads` override for `SCENARIO_THREADS`.
    pub threads: Option<usize>,
    /// `--checkpoint-every` stride, if checkpointing.
    pub checkpoint_every: Option<u64>,
    /// `--store` run-store directory (required with `--checkpoint-every`).
    pub store: Option<PathBuf>,
}

/// Parsed `collabsim resume` arguments.
#[derive(Debug)]
pub struct ResumeArgs {
    /// The snapshot file to resume from.
    pub snapshot: PathBuf,
    /// Print the report Debug line to stdout.
    pub print_report: bool,
    /// `--threads` override for `SCENARIO_THREADS`.
    pub threads: Option<usize>,
}

/// Parsed `collabsim grid` arguments.
#[derive(Debug)]
pub struct GridArgs {
    /// Spec files and/or directories to expand.
    pub specs: Vec<PathBuf>,
    /// `--workers`, if given.
    pub workers: Option<usize>,
    /// Crash re-queues per cell.
    pub retries: usize,
    /// Sweep output directory.
    pub out_dir: PathBuf,
    /// Fail the process if any cell failed.
    pub strict: bool,
    /// `--threads` override for `SCENARIO_THREADS`.
    pub threads: Option<usize>,
    /// `--warm-start` snapshot every cell forks from, if given.
    pub warm_start: Option<PathBuf>,
    /// Skip cells already recorded ok in an existing manifest.
    pub resume: bool,
}

/// Parsed `collabsim worker` arguments.
#[derive(Debug)]
pub struct WorkerArgs {
    /// The cell's spec file.
    pub spec: PathBuf,
    /// Where to write the result record.
    pub out: PathBuf,
    /// Snapshot to fork the cell from, when the sweep is warm-started.
    pub warm_start: Option<PathBuf>,
}

/// Parsed `collabsim scaffold` arguments.
#[derive(Debug)]
pub struct ScaffoldArgs {
    /// Target directory.
    pub dir: PathBuf,
}

/// Parsed `collabsim train` arguments.
#[derive(Debug)]
pub struct TrainArgs {
    /// Use the reduced `--quick` sizing.
    pub quick: bool,
    /// Override the episodes-per-defence count.
    pub episodes: Option<usize>,
    /// Output directory for frozen snapshots and evaluation grids.
    pub out_dir: PathBuf,
    /// Defence keys to run (empty = the full panel).
    pub defences: Vec<String>,
    /// `--threads` override for `SCENARIO_THREADS`.
    pub threads: Option<usize>,
    /// Worker subprocesses for the evaluation grids.
    pub workers: Option<usize>,
}

/// A parsed command line.
#[derive(Debug)]
pub enum Command {
    /// `collabsim run`.
    Run(RunArgs),
    /// `collabsim resume`.
    Resume(ResumeArgs),
    /// `collabsim grid`.
    Grid(GridArgs),
    /// `collabsim worker`.
    Worker(WorkerArgs),
    /// `collabsim scaffold`.
    Scaffold(ScaffoldArgs),
    /// `collabsim train`.
    Train(TrainArgs),
    /// `collabsim help` / `--help` / no arguments.
    Help,
}

fn parse_value<T: FromStr>(flag: &str, value: &str, expected: &str) -> Result<T, CliError> {
    value.parse().map_err(|_| CliError::InvalidFlag {
        flag: flag.to_string(),
        value: value.to_string(),
        expected: expected.to_string(),
    })
}

fn positive(flag: &str, value: &str, expected: &str) -> Result<usize, CliError> {
    let n: usize = parse_value(flag, value, expected)?;
    if n == 0 {
        return Err(CliError::InvalidFlag {
            flag: flag.to_string(),
            value: value.to_string(),
            expected: expected.to_string(),
        });
    }
    Ok(n)
}

/// An iterator over flag/value argument pairs.
struct Args<'a> {
    rest: &'a [String],
    index: usize,
}

impl<'a> Args<'a> {
    fn new(rest: &'a [String]) -> Self {
        Self { rest, index: 0 }
    }

    fn next(&mut self) -> Option<&'a str> {
        let arg = self.rest.get(self.index)?;
        self.index += 1;
        Some(arg)
    }

    fn value(&mut self, flag: &str) -> Result<&'a str, CliError> {
        self.next()
            .ok_or_else(|| CliError::Usage(format!("`{flag}` requires a value")))
    }
}

fn parse_run(rest: &[String]) -> Result<Command, CliError> {
    let mut args = Args::new(rest);
    let mut spec = None;
    let mut run = RunArgs {
        spec: PathBuf::new(),
        jsonl: None,
        every: 1,
        print_report: false,
        sets: Vec::new(),
        baseline: None,
        max_regress: 20.0,
        threads: None,
        checkpoint_every: None,
        store: None,
    };
    while let Some(arg) = args.next() {
        match arg {
            "--jsonl" => run.jsonl = Some(args.value("--jsonl")?.to_string()),
            "--every" => {
                run.every = parse_value("--every", args.value("--every")?, "a step stride ≥ 1")?;
                if run.every == 0 {
                    return Err(CliError::InvalidFlag {
                        flag: "--every".into(),
                        value: "0".into(),
                        expected: "a step stride ≥ 1".into(),
                    });
                }
            }
            "--print-report" => run.print_report = true,
            "--set" => {
                let pair = args.value("--set")?;
                let Some((key, value)) = pair.split_once('=') else {
                    return Err(CliError::InvalidFlag {
                        flag: "--set".into(),
                        value: pair.to_string(),
                        expected: "key=value".into(),
                    });
                };
                run.sets
                    .push((key.trim().to_string(), value.trim().to_string()));
            }
            "--baseline" => run.baseline = Some(PathBuf::from(args.value("--baseline")?)),
            "--max-regress" => {
                run.max_regress = parse_value(
                    "--max-regress",
                    args.value("--max-regress")?,
                    "a percentage",
                )?;
            }
            "--threads" => {
                run.threads = Some(positive(
                    "--threads",
                    args.value("--threads")?,
                    "a thread count ≥ 1",
                )?);
            }
            "--checkpoint-every" => {
                let value = args.value("--checkpoint-every")?;
                let every: u64 = parse_value("--checkpoint-every", value, "a step stride ≥ 1")?;
                if every == 0 {
                    return Err(CliError::InvalidFlag {
                        flag: "--checkpoint-every".into(),
                        value: value.to_string(),
                        expected: "a step stride ≥ 1".into(),
                    });
                }
                run.checkpoint_every = Some(every);
            }
            "--store" => run.store = Some(PathBuf::from(args.value("--store")?)),
            flag if flag.starts_with('-') => {
                return Err(CliError::Usage(format!("unknown flag `{flag}` for `run`")));
            }
            positional => {
                if spec.replace(PathBuf::from(positional)).is_some() {
                    return Err(CliError::Usage(
                        "`run` takes exactly one spec file".to_string(),
                    ));
                }
            }
        }
    }
    match (run.checkpoint_every, &run.store) {
        (Some(_), None) => {
            return Err(CliError::Usage(
                "`--checkpoint-every` requires `--store <dir>`".to_string(),
            ));
        }
        (None, Some(_)) => {
            return Err(CliError::Usage(
                "`--store` requires `--checkpoint-every <n>`".to_string(),
            ));
        }
        _ => {}
    }
    run.spec = spec.ok_or_else(|| CliError::Usage("`run` requires a spec file".to_string()))?;
    Ok(Command::Run(run))
}

fn parse_resume(rest: &[String]) -> Result<Command, CliError> {
    let mut args = Args::new(rest);
    let mut snapshot = None;
    let mut resume = ResumeArgs {
        snapshot: PathBuf::new(),
        print_report: false,
        threads: None,
    };
    while let Some(arg) = args.next() {
        match arg {
            "--print-report" => resume.print_report = true,
            "--threads" => {
                resume.threads = Some(positive(
                    "--threads",
                    args.value("--threads")?,
                    "a thread count ≥ 1",
                )?);
            }
            flag if flag.starts_with('-') => {
                return Err(CliError::Usage(format!(
                    "unknown flag `{flag}` for `resume`"
                )));
            }
            positional => {
                if snapshot.replace(PathBuf::from(positional)).is_some() {
                    return Err(CliError::Usage(
                        "`resume` takes exactly one snapshot file".to_string(),
                    ));
                }
            }
        }
    }
    resume.snapshot =
        snapshot.ok_or_else(|| CliError::Usage("`resume` requires a snapshot file".to_string()))?;
    Ok(Command::Resume(resume))
}

fn parse_grid(rest: &[String]) -> Result<Command, CliError> {
    let mut args = Args::new(rest);
    let mut grid = GridArgs {
        specs: Vec::new(),
        workers: None,
        retries: 1,
        out_dir: PathBuf::from("grid-out"),
        strict: false,
        threads: None,
        warm_start: None,
        resume: false,
    };
    while let Some(arg) = args.next() {
        match arg {
            "--workers" => {
                grid.workers = Some(positive(
                    "--workers",
                    args.value("--workers")?,
                    "a worker count ≥ 1",
                )?);
            }
            "--retries" => {
                grid.retries = parse_value(
                    "--retries",
                    args.value("--retries")?,
                    "a retry count (0 disables retrying)",
                )?;
            }
            "--out-dir" => grid.out_dir = PathBuf::from(args.value("--out-dir")?),
            "--strict" => grid.strict = true,
            "--warm-start" => grid.warm_start = Some(PathBuf::from(args.value("--warm-start")?)),
            "--resume" => grid.resume = true,
            "--threads" => {
                grid.threads = Some(positive(
                    "--threads",
                    args.value("--threads")?,
                    "a thread count ≥ 1",
                )?);
            }
            flag if flag.starts_with('-') => {
                return Err(CliError::Usage(format!("unknown flag `{flag}` for `grid`")));
            }
            positional => grid.specs.push(PathBuf::from(positional)),
        }
    }
    if grid.specs.is_empty() {
        return Err(CliError::Usage(
            "`grid` requires at least one spec file or directory".to_string(),
        ));
    }
    Ok(Command::Grid(grid))
}

fn parse_worker(rest: &[String]) -> Result<Command, CliError> {
    let mut args = Args::new(rest);
    let mut spec = None;
    let mut out = None;
    let mut warm_start = None;
    while let Some(arg) = args.next() {
        match arg {
            "--spec" => spec = Some(PathBuf::from(args.value("--spec")?)),
            "--out" => out = Some(PathBuf::from(args.value("--out")?)),
            "--warm-start" => warm_start = Some(PathBuf::from(args.value("--warm-start")?)),
            other => {
                return Err(CliError::Usage(format!(
                    "unknown argument `{other}` for `worker`"
                )));
            }
        }
    }
    Ok(Command::Worker(WorkerArgs {
        spec: spec.ok_or_else(|| CliError::Usage("`worker` requires `--spec`".to_string()))?,
        out: out.ok_or_else(|| CliError::Usage("`worker` requires `--out`".to_string()))?,
        warm_start,
    }))
}

fn parse_scaffold(rest: &[String]) -> Result<Command, CliError> {
    let mut args = Args::new(rest);
    let mut dir = PathBuf::from("scenarios");
    while let Some(arg) = args.next() {
        match arg {
            "--dir" => dir = PathBuf::from(args.value("--dir")?),
            other => {
                return Err(CliError::Usage(format!(
                    "unknown argument `{other}` for `scaffold`"
                )));
            }
        }
    }
    Ok(Command::Scaffold(ScaffoldArgs { dir }))
}

fn parse_train(rest: &[String]) -> Result<Command, CliError> {
    let mut args = Args::new(rest);
    let mut train = TrainArgs {
        quick: false,
        episodes: None,
        out_dir: PathBuf::from("arms-out"),
        defences: Vec::new(),
        threads: None,
        workers: None,
    };
    while let Some(arg) = args.next() {
        match arg {
            "--quick" => train.quick = true,
            "--episodes" => {
                train.episodes = Some(positive(
                    "--episodes",
                    args.value("--episodes")?,
                    "an episode count ≥ 1",
                )?);
            }
            "--out-dir" => train.out_dir = PathBuf::from(args.value("--out-dir")?),
            "--defence" => train.defences.push(args.value("--defence")?.to_string()),
            "--workers" => {
                train.workers = Some(positive(
                    "--workers",
                    args.value("--workers")?,
                    "a worker count ≥ 1",
                )?);
            }
            "--threads" => {
                train.threads = Some(positive(
                    "--threads",
                    args.value("--threads")?,
                    "a thread count ≥ 1",
                )?);
            }
            other => {
                return Err(CliError::Usage(format!(
                    "unknown argument `{other}` for `train`"
                )));
            }
        }
    }
    Ok(Command::Train(train))
}

/// Parses the command line (without the program name).
pub fn parse(args: &[String]) -> Result<Command, CliError> {
    let Some(subcommand) = args.first() else {
        return Ok(Command::Help);
    };
    let rest = &args[1..];
    match subcommand.as_str() {
        "run" => parse_run(rest),
        "resume" => parse_resume(rest),
        "grid" => parse_grid(rest),
        "worker" => parse_worker(rest),
        "scaffold" => parse_scaffold(rest),
        "train" => parse_train(rest),
        "help" | "--help" | "-h" => Ok(Command::Help),
        other => Err(CliError::Usage(format!(
            "unknown subcommand `{other}` (try `collabsim help`)"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn run_parses_spec_and_flags() {
        let Command::Run(run) = parse(&strings(&[
            "run",
            "a.spec",
            "--jsonl",
            "-",
            "--every",
            "10",
            "--set",
            "population = 50",
            "--print-report",
        ]))
        .unwrap() else {
            panic!("expected run");
        };
        assert_eq!(run.spec, PathBuf::from("a.spec"));
        assert_eq!(run.jsonl.as_deref(), Some("-"));
        assert_eq!(run.every, 10);
        assert!(run.print_report);
        assert_eq!(run.sets, vec![("population".to_string(), "50".to_string())]);
    }

    #[test]
    fn run_checkpoint_flags_must_come_in_pairs() {
        let Command::Run(run) = parse(&strings(&[
            "run",
            "a.spec",
            "--checkpoint-every",
            "25",
            "--store",
            "store-dir",
        ]))
        .unwrap() else {
            panic!("expected run");
        };
        assert_eq!(run.checkpoint_every, Some(25));
        assert_eq!(
            run.store.as_deref(),
            Some(std::path::Path::new("store-dir"))
        );

        let lonely_every =
            parse(&strings(&["run", "a.spec", "--checkpoint-every", "25"])).unwrap_err();
        assert_eq!(lonely_every.kind(), "usage");
        let lonely_store = parse(&strings(&["run", "a.spec", "--store", "d"])).unwrap_err();
        assert_eq!(lonely_store.kind(), "usage");
        let zero = parse(&strings(&[
            "run",
            "a.spec",
            "--checkpoint-every",
            "0",
            "--store",
            "d",
        ]))
        .unwrap_err();
        assert_eq!(zero.kind(), "invalid-flag");
    }

    #[test]
    fn resume_parses_snapshot_and_flags() {
        let Command::Resume(resume) = parse(&strings(&[
            "resume",
            "store/step0000000060-abc.snap",
            "--print-report",
            "--threads",
            "2",
        ]))
        .unwrap() else {
            panic!("expected resume");
        };
        assert_eq!(
            resume.snapshot,
            PathBuf::from("store/step0000000060-abc.snap")
        );
        assert!(resume.print_report);
        assert_eq!(resume.threads, Some(2));

        assert_eq!(parse(&strings(&["resume"])).unwrap_err().kind(), "usage");
        assert_eq!(
            parse(&strings(&["resume", "a.snap", "--bogus"]))
                .unwrap_err()
                .kind(),
            "usage"
        );
    }

    #[test]
    fn grid_parses_warm_start_and_resume() {
        let Command::Grid(grid) = parse(&strings(&[
            "grid",
            "cells/",
            "--warm-start",
            "base.snap",
            "--resume",
        ]))
        .unwrap() else {
            panic!("expected grid");
        };
        assert_eq!(grid.warm_start, Some(PathBuf::from("base.snap")));
        assert!(grid.resume);
    }

    #[test]
    fn train_parses_its_flags() {
        let Command::Train(train) = parse(&strings(&[
            "train",
            "--quick",
            "--episodes",
            "3",
            "--defence",
            "ledger",
            "--defence",
            "gossip",
            "--out-dir",
            "arms",
            "--workers",
            "2",
        ]))
        .unwrap() else {
            panic!("expected train");
        };
        assert!(train.quick);
        assert_eq!(train.episodes, Some(3));
        assert_eq!(train.defences, vec!["ledger", "gossip"]);
        assert_eq!(train.out_dir, PathBuf::from("arms"));
        assert_eq!(train.workers, Some(2));

        assert_eq!(
            parse(&strings(&["train", "--episodes", "0"]))
                .unwrap_err()
                .kind(),
            "invalid-flag"
        );
        assert_eq!(
            parse(&strings(&["train", "positional"]))
                .unwrap_err()
                .kind(),
            "usage"
        );
    }

    #[test]
    fn invalid_workers_is_a_typed_error() {
        for value in ["0", "banana", "-3"] {
            let error = parse(&strings(&["grid", "a.spec", "--workers", value])).unwrap_err();
            assert_eq!(error.kind(), "invalid-flag", "--workers {value}");
            assert_eq!(error.exit_code(), 2);
        }
    }

    #[test]
    fn missing_positionals_are_usage_errors() {
        assert_eq!(parse(&strings(&["run"])).unwrap_err().kind(), "usage");
        assert_eq!(parse(&strings(&["grid"])).unwrap_err().kind(), "usage");
        assert_eq!(parse(&strings(&["worker"])).unwrap_err().kind(), "usage");
        assert_eq!(
            parse(&strings(&["frobnicate"])).unwrap_err().kind(),
            "usage"
        );
    }

    #[test]
    fn no_arguments_means_help() {
        assert!(matches!(parse(&[]).unwrap(), Command::Help));
        assert!(matches!(
            parse(&strings(&["--help"])).unwrap(),
            Command::Help
        ));
    }
}
