//! The CLI phase registry, including the deliberately crashing
//! `chaos-panic` phase used to exercise the grid coordinator's crash
//! isolation.
//!
//! Spec *parsing* never consults a registry, so
//! `scenarios/ci/chaos_panic.spec` can be checked in; the name only has
//! to resolve when a simulation is built — and it resolves solely in the
//! CLI's registry, never in [`PhaseRegistry::standard`].

use collabsim::pipeline::{PhaseRegistry, StepContext, StepPhase};
use collabsim::SimWorld;

/// The registered name of the crashing phase.
pub const CHAOS_PANIC_PHASE: &str = "chaos-panic";

/// A phase that panics on its first execution — a worker running it dies
/// with a non-zero exit, which the coordinator must absorb (retry, then
/// mark the cell failed) without losing the rest of the sweep.
struct ChaosPanicPhase;

impl StepPhase for ChaosPanicPhase {
    fn name(&self) -> &'static str {
        CHAOS_PANIC_PHASE
    }

    fn execute(&self, _world: &mut SimWorld, ctx: &mut StepContext) {
        panic!(
            "chaos-panic phase fired at step {} (deliberate crash-isolation probe)",
            ctx.now
        );
    }
}

/// The registry the CLI resolves phases against: everything in
/// [`PhaseRegistry::standard`] plus [`CHAOS_PANIC_PHASE`].
pub fn cli_registry() -> PhaseRegistry {
    let mut registry = PhaseRegistry::standard();
    registry.register(CHAOS_PANIC_PHASE, |_| Box::new(ChaosPanicPhase));
    registry
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cli_registry_extends_the_standard_one() {
        let registry = cli_registry();
        assert!(registry.contains(CHAOS_PANIC_PHASE));
        assert!(registry.contains("selection"));
        assert!(!PhaseRegistry::standard().contains(CHAOS_PANIC_PHASE));
    }

    #[test]
    fn chaos_spec_resolves_only_in_the_cli_registry() {
        let spec = crate::scenarios::chaos_panic_spec();
        assert!(collabsim::Simulation::from_spec(&spec).is_err());
        assert!(collabsim::Simulation::from_spec_with_registry(&spec, &cli_registry()).is_ok());
    }
}
