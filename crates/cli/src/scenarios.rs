//! The canonical scenario-spec constructors behind the checked-in
//! `scenarios/` tree.
//!
//! Every spec file under `scenarios/` is generated from a constructor in
//! this module (`collabsim scaffold` writes them; the root test
//! `tests/scenario_files.rs` pins the files byte-equal to the
//! constructors), and the four perf-gated bench binaries build their
//! grids from the same constructors — so the CLI, the benches and the
//! checked-in files can never drift apart.

use collabsim::adversary::AdversarySpec;
use collabsim::config::PhaseConfig;
use collabsim::experiment::{LARGE_POPULATION_TIERS, MIX_SWEEP_PERCENTAGES};
use collabsim::{BehaviorMix, BehaviorType, IncentiveScheme, ScenarioSpec, SimulationConfig};
use collabsim_netsim::churn::ChurnModel;
use collabsim_netsim::fault::LinkModel;
use collabsim_reputation::propagation::PropagationScheme;
use std::path::{Path, PathBuf};

/// The golden-report scenario: the exact configuration pinned by
/// `tests/determinism_golden.rs` (20 peers, 120 + 80 steps, the 50/25/25
/// mix, reputation-based incentives, seed `0xC0FFEE`), as a labelled spec.
pub fn golden_spec() -> ScenarioSpec {
    ScenarioSpec::builder()
        .label("golden")
        .population(20)
        .initial_articles(10)
        .mix(BehaviorMix::new(0.5, 0.25, 0.25))
        .incentive(IncentiveScheme::ReputationBased)
        .phase_config(PhaseConfig {
            training_steps: 120,
            evaluation_steps: 80,
            ..Default::default()
        })
        .seed(0xC0FFEE)
        .build()
        .expect("the golden configuration is valid")
}

/// Phase lengths for the gated paper cell (full length unless `quick`).
pub fn paper_cell_phases(quick: bool) -> PhaseConfig {
    if quick {
        PhaseConfig {
            training_steps: 1_000,
            evaluation_steps: 500,
            ..Default::default()
        }
    } else {
        PhaseConfig::default()
    }
}

/// The gated paper workload: the paper's default configuration (100 peers,
/// download-dominated) at the given phase lengths.
pub fn paper_cell_spec(phases: PhaseConfig) -> ScenarioSpec {
    let config = SimulationConfig {
        phases,
        ..Default::default()
    };
    ScenarioSpec::from_config(config)
        .expect("paper cell config is valid")
        .with_label("paper-cell")
}

/// Phase lengths for the 18-cell mix grid: the full 12 000-step paper
/// length when `full_grid_steps`, a smoke length when `quick`, and the
/// CI-sized 600 + 300 default otherwise.
pub fn paper_mix_phases(quick: bool, full_grid_steps: bool) -> PhaseConfig {
    if full_grid_steps {
        PhaseConfig::default()
    } else if quick {
        PhaseConfig {
            training_steps: 150,
            evaluation_steps: 100,
            ..Default::default()
        }
    } else {
        PhaseConfig {
            training_steps: 600,
            evaluation_steps: 300,
            ..Default::default()
        }
    }
}

/// The Section IV-B mix grid: 9 altruistic-share + 9 irrational-share
/// cells over the paper configuration, as labelled specs (the grid behind
/// Figures 4 and 5, and the `paper_grid` bench's parallel stage).
pub fn paper_mix_cells(phases: PhaseConfig) -> Vec<ScenarioSpec> {
    let base = SimulationConfig {
        phases,
        ..Default::default()
    };
    let mut cells = Vec::new();
    for primary in [BehaviorType::Altruistic, BehaviorType::Irrational] {
        for &pct in &MIX_SWEEP_PERCENTAGES {
            let fraction = f64::from(pct) / 100.0;
            let config = base
                .clone()
                .with_mix(BehaviorMix::sweep(primary, fraction))
                .with_seed(base.seed.wrapping_add(u64::from(pct)));
            let spec = ScenarioSpec::from_config(config)
                .expect("mix grid configs are valid")
                .with_label(format!("{}={}%", primary.label(), pct))
                .with_parameter(f64::from(pct));
            cells.push(spec);
        }
    }
    cells
}

/// Phase lengths for the churn regimes (`churn_smoke` sizes).
pub fn churn_phases(quick: bool) -> PhaseConfig {
    let (training, evaluation) = if quick { (400, 200) } else { (2_000, 1_000) };
    PhaseConfig {
        training_steps: training,
        evaluation_steps: evaluation,
        ..Default::default()
    }
}

/// One churn regime over the paper population.
pub fn churn_spec(label: &str, churn: ChurnModel, phases: PhaseConfig) -> ScenarioSpec {
    ScenarioSpec::builder()
        .label(label)
        .mix(BehaviorMix::new(0.5, 0.25, 0.25))
        .phase_config(phases)
        .churn(churn)
        .seed(0xC0AC_0001)
        .build()
        .expect("churn bench specs are valid")
}

/// The three churn regimes of the `churn_smoke` bench: background churn,
/// whitewash-heavy, and combined.
pub fn churn_regimes(phases: PhaseConfig) -> Vec<ScenarioSpec> {
    vec![
        churn_spec(
            "churn/background",
            // Expected equilibrium: joins (0.2/step) balance departures
            // (online × 0.002/step) near the full 100-peer population.
            ChurnModel {
                join_probability: 0.2,
                leave_probability: 0.002,
                whitewash_probability: 0.0,
            },
            phases,
        ),
        churn_spec("churn/whitewash", ChurnModel::whitewashing(0.003), phases),
        churn_spec(
            "churn/combined",
            ChurnModel {
                join_probability: 0.2,
                leave_probability: 0.002,
                whitewash_probability: 0.002,
            },
            phases,
        ),
    ]
}

/// The strategy axis of the attack grid: `(name, parameter)`.
pub const ATTACK_STRATEGIES: [(&str, f64); 5] = [
    ("adaptive-whitewash", 0.0),
    ("naive-whitewash", 0.02),
    ("collusion-ring", 0.0),
    ("oscillating-freerider", 0.0),
    ("sybil-slander", 0.0),
];

/// One reputation-source arm of the attack grid: the globally visible
/// ledger, or a propagated backend feeding service differentiation.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum ReputationSourceArm {
    /// `reputation_source = ledger`.
    Ledger,
    /// `reputation_source = propagated` over the given backend.
    Propagated(PropagationScheme),
}

impl ReputationSourceArm {
    /// All four arms, in grid order.
    pub const ALL: [ReputationSourceArm; 4] = [
        ReputationSourceArm::Ledger,
        ReputationSourceArm::Propagated(PropagationScheme::EigenTrust),
        ReputationSourceArm::Propagated(PropagationScheme::Gossip),
        ReputationSourceArm::Propagated(PropagationScheme::MaxFlow),
    ];

    /// Stable label (`ledger` or the backend's label).
    pub fn label(self) -> &'static str {
        match self {
            ReputationSourceArm::Ledger => "ledger",
            ReputationSourceArm::Propagated(scheme) => scheme.label(),
        }
    }
}

/// Population / adversary / step sizing of the attack grid.
#[derive(Clone, Copy, Debug)]
pub struct AttackGridScale {
    /// Total peers per cell.
    pub population: usize,
    /// Adversary units per cell.
    pub adversaries: usize,
    /// Phase lengths.
    pub phases: PhaseConfig,
    /// Propagation interval for the propagated arms.
    pub interval: u64,
}

/// The `attack_grid` sizing: 36 peers / 4 attackers when `quick`,
/// 50 peers / 5 attackers otherwise.
pub fn attack_scale(quick: bool) -> AttackGridScale {
    if quick {
        AttackGridScale {
            population: 36,
            adversaries: 4,
            phases: PhaseConfig {
                training_steps: 400,
                evaluation_steps: 200,
                ..Default::default()
            },
            interval: 25,
        }
    } else {
        AttackGridScale {
            population: 50,
            adversaries: 5,
            phases: PhaseConfig {
                training_steps: 900,
                evaluation_steps: 600,
                ..Default::default()
            },
            interval: 50,
        }
    }
}

/// One attack-grid cell: strategy × reputation source × incentive scheme.
pub fn attack_cell_spec(
    scale: &AttackGridScale,
    strategy: (&'static str, f64),
    source: ReputationSourceArm,
    scheme: IncentiveScheme,
) -> ScenarioSpec {
    let label = format!("{}/{}/{}", strategy.0, source.label(), scheme.label());
    let mut builder = ScenarioSpec::builder()
        .label(label)
        .population(scale.population)
        .initial_articles(scale.population / 2)
        .mix(BehaviorMix::new(0.5, 0.3, 0.2))
        .incentive(scheme)
        .phase_config(scale.phases)
        .seed(0xA77AC)
        .adversary(AdversarySpec::new(strategy.0, scale.adversaries).with_parameter(strategy.1));
    if let ReputationSourceArm::Propagated(propagation) = source {
        builder = builder
            .propagation(propagation, scale.interval)
            .propagated_reputation();
    }
    builder.build().expect("attack grid specs are valid")
}

/// One expanded attack-grid cell with its axis coordinates.
#[derive(Clone)]
pub struct AttackCell {
    /// The runnable spec.
    pub spec: ScenarioSpec,
    /// Strategy name (the `ATTACK_STRATEGIES` axis).
    pub strategy: &'static str,
    /// Reputation-source arm.
    pub source: ReputationSourceArm,
    /// Incentive scheme.
    pub scheme: IncentiveScheme,
}

/// The full 30-cell attack grid in bench order: arm (a) — every strategy ×
/// every reputation source under the paper scheme — then arm (b) — every
/// strategy × the non-reputation schemes under the ledger source.
pub fn attack_cells(scale: &AttackGridScale) -> Vec<AttackCell> {
    let mut cells = Vec::new();
    for &strategy in &ATTACK_STRATEGIES {
        for &source in &ReputationSourceArm::ALL {
            cells.push(AttackCell {
                spec: attack_cell_spec(scale, strategy, source, IncentiveScheme::ReputationBased),
                strategy: strategy.0,
                source,
                scheme: IncentiveScheme::ReputationBased,
            });
        }
    }
    for &strategy in &ATTACK_STRATEGIES {
        for scheme in [IncentiveScheme::None, IncentiveScheme::TitForTat] {
            cells.push(AttackCell {
                spec: attack_cell_spec(scale, strategy, ReputationSourceArm::Ledger, scheme),
                strategy: strategy.0,
                source: ReputationSourceArm::Ledger,
                scheme,
            });
        }
    }
    cells
}

/// The fault-regime axis of the `fault_grid` bench: `(name, model)`.
/// `ideal` anchors the comparison; the other three stress one fault class
/// each (iid loss, per-link latency, a partitioned two-cluster topology).
pub fn fault_regimes() -> [(&'static str, LinkModel); 4] {
    [
        ("ideal", LinkModel::Ideal),
        ("lossy", LinkModel::IidLoss { loss: 0.05 }),
        ("latent", LinkModel::UniformLatency { min: 2, max: 8 }),
        (
            "clustered",
            LinkModel::TwoClusters {
                loss: 0.1,
                penalty: 4,
            },
        ),
    ]
}

/// Phase lengths for the fault grid (`fault_grid` sizes).
pub fn fault_phases(quick: bool) -> PhaseConfig {
    let (training, evaluation) = if quick { (300, 150) } else { (1_500, 750) };
    PhaseConfig {
        training_steps: training,
        evaluation_steps: evaluation,
        ..Default::default()
    }
}

/// One fault-grid cell: fault regime × incentive scheme over the paper
/// mix. The grid reports how much incentive-scheme separation each fault
/// regime preserves.
pub fn fault_cell_spec(
    regime: (&str, LinkModel),
    scheme: IncentiveScheme,
    phases: PhaseConfig,
) -> ScenarioSpec {
    ScenarioSpec::builder()
        .label(format!("faults/{}/{}", regime.0, scheme.label()))
        .mix(BehaviorMix::new(0.5, 0.25, 0.25))
        .incentive(scheme)
        .phase_config(phases)
        .network(regime.1)
        .seed(0xFA_017)
        .build()
        .expect("fault grid specs are valid")
}

/// The full 12-cell fault grid in bench order: every fault regime × the
/// three incentive schemes (none, tit-for-tat, reputation).
pub fn fault_cells(phases: PhaseConfig) -> Vec<ScenarioSpec> {
    let mut cells = Vec::new();
    for regime in fault_regimes() {
        for scheme in [
            IncentiveScheme::None,
            IncentiveScheme::TitForTat,
            IncentiveScheme::ReputationBased,
        ] {
            cells.push(fault_cell_spec(regime, scheme, phases));
        }
    }
    cells
}

/// One population tier of the `scale_population` bench: the
/// `large_population` preset, optionally with overridden phase lengths
/// (the reduced-step 10⁶ CI smoke leg).
pub fn scale_tier_spec(peers: usize, train: Option<u64>, eval: Option<u64>) -> ScenarioSpec {
    match (train, eval) {
        (None, None) => ScenarioSpec::large_population(peers),
        _ => {
            let mut config = SimulationConfig::large_population(peers);
            if let Some(steps) = train {
                config.phases.training_steps = steps;
            }
            if let Some(steps) = eval {
                config.phases.evaluation_steps = steps;
            }
            ScenarioSpec::from_config(config)
                .expect("large-population preset with step overrides is valid")
                .with_label(format!("large-population/pop={peers}"))
        }
    }
}

/// A deliberately crashing scenario for the crash-isolation path: a tiny
/// run whose phase list ends in the CLI-registered
/// [`chaos-panic`](crate::chaos::CHAOS_PANIC_PHASE) phase, which panics on
/// its first execution. `collabsim grid` must survive it (the cell is
/// retried, then reported failed in the manifest); running it in-process
/// obviously crashes — that is the point.
pub fn chaos_panic_spec() -> ScenarioSpec {
    ScenarioSpec::builder()
        .label("ci/chaos-panic")
        .population(12)
        .initial_articles(6)
        .phase_config(PhaseConfig {
            training_steps: 30,
            evaluation_steps: 20,
            ..Default::default()
        })
        .seed(0xBAD_5EED)
        .push_phase(crate::chaos::CHAOS_PANIC_PHASE)
        .build()
        .expect("the chaos spec is structurally valid")
}

/// Turns a cell label into a flat file stem: `=` and `/` become `_`,
/// `%` is dropped, everything alphanumeric / `-` / `.` passes through.
fn file_stem(label: &str) -> String {
    let mut out = String::new();
    for c in label.chars() {
        match c {
            '%' => {}
            c if c.is_ascii_alphanumeric() || c == '-' || c == '.' => out.push(c),
            _ => out.push('_'),
        }
    }
    out
}

/// The full checked-in scenario tree: `(relative path, spec)` for every
/// file under `scenarios/`. `collabsim scaffold` writes exactly this
/// list; `tests/scenario_files.rs` pins the checked-in files byte-equal
/// to it.
pub fn scenario_files() -> Vec<(PathBuf, ScenarioSpec)> {
    let mut files: Vec<(PathBuf, ScenarioSpec)> = Vec::new();
    files.push((PathBuf::from("golden.spec"), golden_spec()));
    files.push((
        PathBuf::from("paper/paper_cell.spec"),
        paper_cell_spec(paper_cell_phases(false)),
    ));
    for spec in paper_mix_cells(paper_mix_phases(false, false)) {
        let name = format!("paper/mix/{}.spec", file_stem(spec.label()));
        files.push((PathBuf::from(name), spec));
    }
    for spec in churn_regimes(churn_phases(false)) {
        let regime = spec.label().rsplit('/').next().expect("labelled regime");
        files.push((PathBuf::from(format!("churn/{regime}.spec")), spec));
    }
    for cell in attack_cells(&attack_scale(false)) {
        let name = format!("attacks/{}.spec", file_stem(cell.spec.label()));
        files.push((PathBuf::from(name), cell.spec));
    }
    for spec in fault_cells(fault_phases(false)) {
        let cell = spec
            .label()
            .strip_prefix("faults/")
            .expect("fault cells are labelled faults/<regime>/<scheme>")
            .to_string();
        files.push((
            PathBuf::from(format!("faults/{}.spec", file_stem(&cell))),
            spec,
        ));
    }
    for &peers in &LARGE_POPULATION_TIERS {
        files.push((
            PathBuf::from(format!("scale/pop_{peers}.spec")),
            scale_tier_spec(peers, None, None),
        ));
    }
    // The arms-race cells: the shared base plus, per defence, the
    // training cell (α > 0), the frozen-evaluation cell (α = 0) and the
    // scripted opponent — the specs `collabsim train` and the `arms_race`
    // bench construct in-process.
    let arms = crate::training::arms_scale(false);
    files.push((
        PathBuf::from("arms/base.spec"),
        crate::training::arms_base_spec(&arms),
    ));
    for defence in crate::training::ARMS_DEFENCES {
        for spec in [
            crate::training::arms_train_spec(&arms, defence),
            crate::training::arms_frozen_spec(&arms, defence),
            crate::training::arms_scripted_spec(&arms, defence),
        ] {
            let cell = spec
                .label()
                .strip_prefix("arms/")
                .expect("arms cells are labelled arms/<defence>/<role>")
                .to_string();
            files.push((
                PathBuf::from(format!("arms/{}.spec", file_stem(&cell))),
                spec,
            ));
        }
    }
    files.push((PathBuf::from("ci/chaos_panic.spec"), chaos_panic_spec()));
    files
}

/// Writes the whole [`scenario_files`] tree under `root` (creating
/// directories as needed) and returns the written paths.
pub fn scaffold(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut written = Vec::new();
    for (rel, spec) in scenario_files() {
        let path = root.join(&rel);
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(&path, spec.to_text())?;
        written.push(path);
    }
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_tree_has_the_expected_shape() {
        let files = scenario_files();
        // 1 golden + 1 paper cell + 18 mix + 3 churn + 30 attacks +
        // 12 faults + 3 scale tiers + 16 arms cells + 1 chaos probe.
        assert_eq!(files.len(), 85);
        let paths: Vec<String> = files
            .iter()
            .map(|(p, _)| p.to_string_lossy().into_owned())
            .collect();
        assert!(paths.contains(&"golden.spec".to_string()));
        assert!(paths.contains(&"paper/mix/altruistic_10.spec".to_string()));
        assert!(paths.contains(&"attacks/adaptive-whitewash_ledger_reputation.spec".to_string()));
        assert!(paths.contains(&"churn/whitewash.spec".to_string()));
        assert!(paths.contains(&"faults/lossy_reputation.spec".to_string()));
        assert!(paths.contains(&"arms/base.spec".to_string()));
        assert!(paths.contains(&"arms/eigentrust-pretrusted_trained.spec".to_string()));
        assert!(paths.contains(&"ci/chaos_panic.spec".to_string()));
        // No two cells may collapse onto the same file name.
        let mut unique = paths.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), paths.len());
    }

    #[test]
    fn every_spec_round_trips_through_the_text_format() {
        for (path, spec) in scenario_files() {
            let text = spec.to_text();
            let parsed = ScenarioSpec::parse(&text)
                .unwrap_or_else(|e| panic!("{} does not parse: {e}", path.display()));
            assert_eq!(parsed.to_text(), text, "{} round trip", path.display());
            assert_eq!(parsed.label(), spec.label(), "{} label", path.display());
        }
    }

    #[test]
    fn grids_match_the_published_cell_counts() {
        assert_eq!(paper_mix_cells(paper_mix_phases(false, false)).len(), 18);
        assert_eq!(churn_regimes(churn_phases(true)).len(), 3);
        assert_eq!(attack_cells(&attack_scale(true)).len(), 30);
        assert_eq!(fault_cells(fault_phases(true)).len(), 12);
    }
}
