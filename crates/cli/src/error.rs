//! Typed CLI errors.
//!
//! Every failure path of the `collabsim` binary funnels into [`CliError`],
//! which renders as `error[<kind>]: <detail>` so scripts (and the CLI's
//! own tests) can match on the kind without parsing prose. Usage mistakes
//! exit with code 2, snapshot problems (corrupt, truncated or
//! version-mismatched checkpoint files) with code 3, everything else
//! with 1.

use collabsim::{SnapshotError, SpecError};
use std::fmt;
use std::path::PathBuf;

/// A typed error from the `collabsim` command line.
#[derive(Debug)]
pub enum CliError {
    /// The command line itself is malformed (unknown subcommand or flag,
    /// missing positional argument).
    Usage(String),
    /// A flag's value did not parse or is out of range.
    InvalidFlag {
        /// The flag, e.g. `--workers`.
        flag: String,
        /// The rejected value.
        value: String,
        /// What would have been accepted.
        expected: String,
    },
    /// A file or directory could not be read or written.
    Io {
        /// The offending path.
        path: PathBuf,
        /// The rendered I/O error.
        message: String,
    },
    /// A scenario spec failed to load, parse, validate, or resolve.
    Spec {
        /// The spec file, when the spec came from disk.
        path: Option<PathBuf>,
        /// The underlying spec-layer error.
        error: SpecError,
    },
    /// A baseline file is unreadable or lacks the gated metric.
    Baseline {
        /// The baseline file.
        path: PathBuf,
        /// What went wrong.
        message: String,
    },
    /// The grid coordinator failed as a whole (not a single cell — cell
    /// crashes are retried and reported in the manifest instead).
    Grid {
        /// What went wrong.
        message: String,
    },
    /// A snapshot could not be read, decoded or restored: corrupt or
    /// truncated bytes, an unsupported format version, a missing store
    /// entry, or state that no longer fits its embedded spec.
    Snapshot {
        /// The snapshot file or store directory, when known.
        path: Option<PathBuf>,
        /// The underlying snapshot-layer error.
        error: SnapshotError,
    },
}

impl CliError {
    /// The stable kind tag rendered inside `error[...]`.
    pub fn kind(&self) -> &'static str {
        match self {
            CliError::Usage(_) => "usage",
            CliError::InvalidFlag { .. } => "invalid-flag",
            CliError::Io { .. } => "io",
            // A spec that failed because the *file* was unreadable is an
            // I/O problem; everything else about it is a spec problem.
            CliError::Spec {
                error: SpecError::Io { .. },
                ..
            } => "io",
            CliError::Spec { .. } => "spec",
            CliError::Baseline { .. } => "baseline",
            CliError::Grid { .. } => "grid",
            CliError::Snapshot { .. } => "snapshot",
        }
    }

    /// Process exit code: 2 for command-line mistakes, 3 for snapshot
    /// problems (so resume scripts can distinguish "the checkpoint is
    /// bad" from every other failure), 1 otherwise.
    pub fn exit_code(&self) -> i32 {
        match self {
            CliError::Usage(_) | CliError::InvalidFlag { .. } => 2,
            CliError::Snapshot { .. } => 3,
            _ => 1,
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "error[{}]: ", self.kind())?;
        match self {
            CliError::Usage(message) => write!(f, "{message}"),
            CliError::InvalidFlag {
                flag,
                value,
                expected,
            } => write!(
                f,
                "invalid value `{value}` for `{flag}`: expected {expected}"
            ),
            CliError::Io { path, message } => write!(f, "{}: {message}", path.display()),
            CliError::Spec {
                path: Some(path),
                error,
            } => write!(f, "{}: {error}", path.display()),
            CliError::Spec { path: None, error } => write!(f, "{error}"),
            CliError::Baseline { path, message } => write!(f, "{}: {message}", path.display()),
            CliError::Grid { message } => write!(f, "{message}"),
            CliError::Snapshot {
                path: Some(path),
                error,
            } => write!(f, "{}: {error}", path.display()),
            CliError::Snapshot { path: None, error } => write!(f, "{error}"),
        }
    }
}

impl std::error::Error for CliError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_and_exit_codes() {
        let usage = CliError::Usage("no subcommand".into());
        assert_eq!(usage.kind(), "usage");
        assert_eq!(usage.exit_code(), 2);

        let flag = CliError::InvalidFlag {
            flag: "--workers".into(),
            value: "zero".into(),
            expected: "a worker count ≥ 1".into(),
        };
        assert_eq!(flag.kind(), "invalid-flag");
        assert_eq!(flag.exit_code(), 2);
        assert!(flag.to_string().starts_with("error[invalid-flag]: "));

        let spec = CliError::Spec {
            path: None,
            error: SpecError::EmptyPhaseList,
        };
        assert_eq!(spec.kind(), "spec");
        assert_eq!(spec.exit_code(), 1);

        let snapshot = CliError::Snapshot {
            path: Some(PathBuf::from("run.snap")),
            error: SnapshotError::Corrupt("payload truncated".into()),
        };
        assert_eq!(snapshot.kind(), "snapshot");
        assert_eq!(snapshot.exit_code(), 3);
        let rendered = snapshot.to_string();
        assert!(rendered.starts_with("error[snapshot]: "), "{rendered}");
        assert!(rendered.contains("run.snap"), "{rendered}");
    }

    #[test]
    fn unreadable_spec_files_report_as_io() {
        let error = CliError::Spec {
            path: Some(PathBuf::from("missing.spec")),
            error: SpecError::Io {
                path: "missing.spec".into(),
                message: "No such file or directory".into(),
            },
        };
        assert_eq!(error.kind(), "io");
        assert!(error.to_string().starts_with("error[io]: "));
    }
}
