//! The shared runner core: loading specs, running them instrumented, and
//! baseline gating.
//!
//! Everything that executes a scenario — the `collabsim run` subcommand,
//! the `collabsim worker` cell executor, and the four perf-gated bench
//! binaries in `collabsim-bench` — goes through [`run_spec_instrumented`],
//! so a single run is timed, phase-profiled and reported the same way
//! everywhere. Baseline files are the benches' own self-describing JSON
//! reports; [`extract_number`] pulls a gated metric out without a JSON
//! parser crate (the offline build has no serde).

use crate::error::CliError;
use collabsim::pipeline::PhaseRegistry;
use collabsim::snapshot::Snapshot;
use collabsim::{
    AdversaryRegistry, DirStore, ScenarioSpec, Simulation, SimulationReport, SnapshotError,
};
use std::path::Path;
use std::time::Instant;

/// The measured outcome of one instrumented run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// The spec's label.
    pub label: String,
    /// Training + evaluation steps executed.
    pub total_steps: u64,
    /// Wall-clock spent constructing the world (DHT join, agents, ledger).
    pub build_seconds: f64,
    /// Wall-clock spent stepping.
    pub run_seconds: f64,
    /// `total_steps / run_seconds`.
    pub steps_per_sec: f64,
    /// The deterministic report (the Debug rendering of this value is the
    /// cross-process cell-result format — see
    /// [`crate::coordinator::render_cell_result`]).
    pub report: SimulationReport,
}

/// Loads a spec file, mapping both I/O and parse failures to [`CliError`].
pub fn load_spec(path: &Path) -> Result<ScenarioSpec, CliError> {
    ScenarioSpec::load(path).map_err(|error| CliError::Spec {
        path: Some(path.to_path_buf()),
        error,
    })
}

/// Loads a spec file and appends `key = value` override lines before
/// parsing (the `--set` flag; later keys win, exactly like a hand-edited
/// file).
pub fn load_spec_with_overrides(
    path: &Path,
    overrides: &[(String, String)],
) -> Result<ScenarioSpec, CliError> {
    if overrides.is_empty() {
        return load_spec(path);
    }
    let mut text = std::fs::read_to_string(path).map_err(|e| CliError::Spec {
        path: Some(path.to_path_buf()),
        error: collabsim::SpecError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        },
    })?;
    for (key, value) in overrides {
        text.push('\n');
        text.push_str(key);
        text.push_str(" = ");
        text.push_str(value);
        text.push('\n');
    }
    ScenarioSpec::parse(&text).map_err(|error| CliError::Spec {
        path: Some(path.to_path_buf()),
        error,
    })
}

/// Builds and runs one spec with phase timings enabled, resolving phases
/// against `registry`. `configure` runs after construction and before the
/// run — attach observers there. Returns the outcome together with the
/// finished [`Simulation`] so callers can query timings, observers and
/// world state.
pub fn run_spec_instrumented(
    spec: &ScenarioSpec,
    registry: &PhaseRegistry,
    configure: impl FnOnce(&mut Simulation),
) -> Result<(RunOutcome, Simulation), CliError> {
    let total_steps = spec.config().phases.total_steps();
    let building = Instant::now();
    let mut sim = Simulation::from_spec_with_registry(spec, registry)
        .map_err(|error| CliError::Spec { path: None, error })?;
    let build_seconds = building.elapsed().as_secs_f64();
    sim.enable_phase_timings();
    configure(&mut sim);
    let running = Instant::now();
    let report = sim.run();
    let run_seconds = running.elapsed().as_secs_f64();
    let outcome = RunOutcome {
        label: spec.label().to_string(),
        total_steps,
        build_seconds,
        run_seconds,
        steps_per_sec: total_steps as f64 / run_seconds,
        report,
    };
    Ok((outcome, sim))
}

/// Wraps a snapshot-layer failure as the CLI's `error[snapshot]`
/// (exit code 3), attaching the offending file or store path when known.
pub fn snapshot_err(path: Option<&Path>, error: SnapshotError) -> CliError {
    CliError::Snapshot {
        path: path.map(Path::to_path_buf),
        error,
    }
}

/// [`run_spec_instrumented`], checkpointing to an on-disk [`DirStore`]
/// under `store_dir` every `every` steps. Returns the outcome, the
/// finished simulation and the store keys written (chronological).
/// Checkpointing is pure observation: the report is bit-identical to an
/// uncheckpointed run of the same spec.
pub fn run_spec_checkpointed(
    spec: &ScenarioSpec,
    registry: &PhaseRegistry,
    every: u64,
    store_dir: &Path,
    configure: impl FnOnce(&mut Simulation),
) -> Result<(RunOutcome, Simulation, Vec<String>), CliError> {
    let mut store =
        DirStore::open(store_dir).map_err(|error| snapshot_err(Some(store_dir), error))?;
    let total_steps = spec.config().phases.total_steps();
    let building = Instant::now();
    let mut sim = Simulation::from_spec_with_registry(spec, registry)
        .map_err(|error| CliError::Spec { path: None, error })?;
    let build_seconds = building.elapsed().as_secs_f64();
    sim.enable_phase_timings();
    configure(&mut sim);
    let running = Instant::now();
    let (report, keys) = sim
        .run_with_checkpoints(spec, every, &mut store)
        .map_err(|error| snapshot_err(Some(store_dir), error))?;
    let run_seconds = running.elapsed().as_secs_f64();
    let outcome = RunOutcome {
        label: spec.label().to_string(),
        total_steps,
        build_seconds,
        run_seconds,
        steps_per_sec: total_steps as f64 / run_seconds,
        report,
    };
    Ok((outcome, sim, keys))
}

/// Resumes a snapshot through the shared instrumented path: rebuilds the
/// simulation from the embedded spec, overwrites its state, and runs the
/// remaining protocol with [`Simulation::finish`]. `total_steps` (and the
/// throughput derived from it) count only the steps *this* process
/// executed — the remainder the resume paid for, not the checkpointed
/// prefix.
pub fn resume_snapshot_instrumented(
    snapshot: &Snapshot,
    registry: &PhaseRegistry,
    configure: impl FnOnce(&mut Simulation),
) -> Result<(RunOutcome, Simulation), CliError> {
    let building = Instant::now();
    let mut sim =
        Simulation::resume_with_registries(snapshot, registry, &AdversaryRegistry::standard())
            .map_err(|error| snapshot_err(None, error))?;
    let build_seconds = building.elapsed().as_secs_f64();
    let label = ScenarioSpec::parse(&snapshot.spec_text)
        .map(|spec| spec.label().to_string())
        .unwrap_or_else(|_| "resumed".to_string());
    sim.enable_phase_timings();
    configure(&mut sim);
    let total_steps = sim.remaining_steps();
    let running = Instant::now();
    let report = sim.finish();
    let run_seconds = running.elapsed().as_secs_f64();
    let outcome = RunOutcome {
        label,
        total_steps,
        build_seconds,
        run_seconds,
        steps_per_sec: total_steps as f64 / run_seconds,
        report,
    };
    Ok((outcome, sim))
}

/// Extracts `"key": <number>` from a line of self-describing bench JSON
/// (the baseline format; the offline harness has no JSON parser crate).
pub fn extract_number(line: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let start = line.find(&needle)? + needle.len();
    let rest = line[start..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Reads a baseline file and extracts the first `"key": <number>` on any
/// line. A missing file or a file without the metric (e.g. not JSON at
/// all) is a typed [`CliError::Baseline`].
pub fn baseline_number(path: &Path, key: &str) -> Result<f64, CliError> {
    let text = std::fs::read_to_string(path).map_err(|e| CliError::Baseline {
        path: path.to_path_buf(),
        message: e.to_string(),
    })?;
    text.lines()
        .find_map(|line| extract_number(line, key))
        .ok_or_else(|| CliError::Baseline {
            path: path.to_path_buf(),
            message: format!("no `\"{key}\"` number found (malformed or wrong baseline file)"),
        })
}

/// Floor gate on a throughput metric: prints the standard verdict line and
/// returns whether the current value clears
/// `reference × (1 − max_regress_pct/100)`.
pub fn gate_floor(name: &str, current: f64, reference: f64, max_regress_pct: f64) -> bool {
    let floor = reference * (1.0 - max_regress_pct / 100.0);
    let ok = current >= floor;
    println!(
        "{name}: {current:.2} steps/sec vs baseline {reference:.2} (floor {floor:.2}) — {}",
        if ok { "ok" } else { "REGRESSION" }
    );
    ok
}

/// Ceiling gate on peak RSS: prints the standard verdict line and returns
/// whether the current value stays under
/// `recorded × (1 + max_regress_pct/100)`.
pub fn gate_rss_ceiling(name: &str, current: f64, recorded: f64, max_regress_pct: f64) -> bool {
    let ceiling = recorded * (1.0 + max_regress_pct / 100.0);
    let ok = current <= ceiling;
    println!(
        "{name}: peak RSS {current:.0} MB vs baseline {recorded:.0} MB (ceiling {ceiling:.0}) — {}",
        if ok { "ok" } else { "REGRESSION" }
    );
    ok
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extract_number_reads_bench_json_lines() {
        let line = "    {\"peers\": 100, \"steps_per_sec\": 9517.25, \"neg\": -2e3}";
        assert_eq!(extract_number(line, "peers"), Some(100.0));
        assert_eq!(extract_number(line, "steps_per_sec"), Some(9517.25));
        assert_eq!(extract_number(line, "neg"), Some(-2000.0));
        assert_eq!(extract_number(line, "missing"), None);
    }

    #[test]
    fn gates_compare_against_floor_and_ceiling() {
        assert!(gate_floor("t", 90.0, 100.0, 20.0));
        assert!(!gate_floor("t", 70.0, 100.0, 20.0));
        assert!(gate_rss_ceiling("t", 110.0, 100.0, 20.0));
        assert!(!gate_rss_ceiling("t", 130.0, 100.0, 20.0));
    }

    #[test]
    fn overrides_append_and_later_keys_win() {
        let dir = std::env::temp_dir().join(format!("collabsim-cli-ov-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("base.spec");
        let spec = crate::scenarios::golden_spec();
        std::fs::write(&path, spec.to_text()).unwrap();
        let overridden =
            load_spec_with_overrides(&path, &[("population".to_string(), "30".to_string())])
                .unwrap();
        assert_eq!(overridden.config().population, 30);
        assert_eq!(overridden.config().seed, spec.config().seed);
        std::fs::remove_dir_all(&dir).ok();
    }
}
