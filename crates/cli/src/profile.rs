//! The profiling summary printed after a run: throughput plus the
//! per-phase wall-clock breakdown recorded by
//! [`PhaseTimings`].

use collabsim::pipeline::PhaseTimings;
use std::fmt::Write as _;

/// Renders the human-readable profiling summary for one finished run.
///
/// Shape:
///
/// ```text
/// profile: 12000 steps in 1.234s — 9724.51 steps/sec
///   phase          total        mean/step    share
///   selection      0.312s       26.0µs       25.3%
///   ...
/// ```
pub fn render_profile(total_steps: u64, run_seconds: f64, timings: &PhaseTimings) -> String {
    let mut out = String::new();
    let steps_per_sec = if run_seconds > 0.0 {
        total_steps as f64 / run_seconds
    } else {
        f64::INFINITY
    };
    let _ = writeln!(
        out,
        "profile: {total_steps} steps in {run_seconds:.3}s — {steps_per_sec:.2} steps/sec"
    );
    let entries = timings.totals();
    if entries.is_empty() {
        let _ = writeln!(out, "  (no phase timings recorded)");
        return out;
    }
    let phase_total: f64 = entries.iter().map(|(_, d, _)| d.as_secs_f64()).sum();
    let _ = writeln!(
        out,
        "  {:<14} {:>10} {:>12} {:>7}",
        "phase", "total", "mean/step", "share"
    );
    for (name, duration, count) in entries {
        let seconds = duration.as_secs_f64();
        let mean_us = if *count > 0 {
            seconds * 1e6 / *count as f64
        } else {
            0.0
        };
        let share = if phase_total > 0.0 {
            100.0 * seconds / phase_total
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "  {name:<14} {:>9.3}s {:>10.1}µs {share:>6.1}%",
            seconds, mean_us
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_has_header_and_throughput() {
        let timings = PhaseTimings::default();
        let out = render_profile(100, 2.0, &timings);
        assert!(out.starts_with("profile: 100 steps in 2.000s — 50.00 steps/sec"));
        assert!(out.contains("no phase timings recorded"));
    }
}
