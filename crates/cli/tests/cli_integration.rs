//! End-to-end tests of the `collabsim` binary and the multi-process grid
//! coordinator.
//!
//! Covered here:
//!
//! * every CLI error path exits non-zero with a typed `error[kind]`
//!   message (unknown spec key, unreadable file, invalid `--workers`,
//!   malformed baseline JSON),
//! * `collabsim run --print-report` on the checked-in golden spec
//!   reproduces the in-process golden report byte-for-byte, at
//!   `SCENARIO_THREADS` 1 and 4,
//! * a `--jsonl -` stream is structurally valid (run_start / step /
//!   run_end envelopes on machine-owned stdout),
//! * `collabsim grid --workers 4` over the 18-cell paper mix grid yields
//!   cell reports identical to the in-process [`ScenarioRunner`],
//! * a worker SIGKILLed mid-cell is retried and the sweep still completes
//!   (deterministic one-shot kill injection via `COLLABSIM_TEST_KILL_ONCE`),
//! * a worker that lands a torn half-record while exiting 0 is detected
//!   and retried (`COLLABSIM_TEST_TRUNCATE_ONCE`), and the sweep completes,
//! * a deliberately panicking registered phase fails its own cell, not the
//!   surrounding grid (`--strict` turns the recorded failure into exit 1),
//!   and the manifest inlines the tail of the dead worker's log,
//! * `--set network=<unknown>` surfaces the typed unknown-network-model
//!   spec error through the `error[spec]` exit path,
//! * `run --checkpoint-every --store` + `resume` reproduces the
//!   uninterrupted report byte-for-byte; a truncated or missing snapshot
//!   exits with `error[snapshot]` and code 3,
//! * `grid --warm-start` workers fork from a shared equilibrated snapshot
//!   bit-identically to in-process forks, and `grid --resume` skips
//!   manifest-ok cells while re-dispatching failed ones.
//!
//! [`ScenarioRunner`]: collabsim::experiment::ScenarioRunner

use collabsim::config::PhaseConfig;
use collabsim::experiment::ScenarioRunner;
use collabsim::snapshot::write_snapshot_file;
use collabsim::{ScenarioSpec, Simulation};
use collabsim_cli::coordinator::{run_grid, GridOptions};
use collabsim_cli::scenarios::{chaos_panic_spec, golden_spec, paper_mix_cells};
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn collabsim_bin() -> &'static str {
    env!("CARGO_BIN_EXE_collabsim")
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/cli sits two levels under the repo root")
        .to_path_buf()
}

/// A fresh scratch directory per test (plain std, no tempdir crate).
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("collabsim-it-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn run_cli(args: &[&str]) -> Output {
    Command::new(collabsim_bin())
        .args(args)
        .output()
        .expect("collabsim binary runs")
}

fn stderr_of(output: &Output) -> String {
    String::from_utf8_lossy(&output.stderr).into_owned()
}

fn stdout_of(output: &Output) -> String {
    String::from_utf8_lossy(&output.stdout).into_owned()
}

// ---------------------------------------------------------------- errors

#[test]
fn unknown_spec_key_is_a_typed_spec_error() {
    let dir = scratch("unknown-key");
    let path = dir.join("bad.spec");
    std::fs::write(
        &path,
        "# collabsim scenario spec v1\nlabel = bad\nfroopiness = 12\n",
    )
    .unwrap();
    let output = run_cli(&["run", path.to_str().unwrap()]);
    assert_eq!(output.status.code(), Some(1));
    let err = stderr_of(&output);
    assert!(err.contains("error[spec]"), "stderr: {err}");
    assert!(
        err.contains("unknown spec key `froopiness`"),
        "stderr: {err}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unknown_network_model_override_is_a_typed_spec_error() {
    let golden = repo_root().join("scenarios/golden.spec");
    let output = run_cli(&[
        "run",
        golden.to_str().unwrap(),
        "--set",
        "network=carrier-pigeon",
    ]);
    assert_eq!(output.status.code(), Some(1));
    let err = stderr_of(&output);
    assert!(err.contains("error[spec]"), "stderr: {err}");
    assert!(
        err.contains("unknown network model `carrier-pigeon`"),
        "stderr: {err}"
    );
}

#[test]
fn unreadable_spec_file_is_a_typed_io_error() {
    let output = run_cli(&["run", "/nonexistent/collabsim/missing.spec"]);
    assert_eq!(output.status.code(), Some(1));
    let err = stderr_of(&output);
    assert!(err.contains("error[io]"), "stderr: {err}");
    assert!(err.contains("missing.spec"), "stderr: {err}");
}

#[test]
fn invalid_workers_is_a_typed_flag_error_with_usage_exit_code() {
    for bad in ["0", "banana", "-3"] {
        let output = run_cli(&["grid", "whatever.spec", "--workers", bad]);
        assert_eq!(output.status.code(), Some(2), "--workers {bad}");
        let err = stderr_of(&output);
        assert!(err.contains("error[invalid-flag]"), "stderr: {err}");
        assert!(err.contains("--workers"), "stderr: {err}");
    }
}

#[test]
fn malformed_baseline_is_a_typed_baseline_error() {
    let dir = scratch("bad-baseline");
    let baseline = dir.join("baseline.json");
    std::fs::write(&baseline, "this is not json at all\n").unwrap();
    let golden = repo_root().join("scenarios/golden.spec");
    let output = run_cli(&[
        "run",
        golden.to_str().unwrap(),
        "--baseline",
        baseline.to_str().unwrap(),
    ]);
    assert_eq!(output.status.code(), Some(1));
    let err = stderr_of(&output);
    assert!(err.contains("error[baseline]"), "stderr: {err}");
    assert!(err.contains("steps_per_sec"), "stderr: {err}");
    std::fs::remove_dir_all(&dir).ok();
}

// ------------------------------------------------------- golden identity

/// Extracts the `--print-report` line from a run's stdout.
fn report_line(stdout: &str) -> String {
    stdout
        .lines()
        .find(|line| line.starts_with("SimulationReport {"))
        .unwrap_or_else(|| panic!("no report line in stdout: {stdout}"))
        .to_string()
}

#[test]
fn run_on_the_golden_spec_reproduces_the_golden_report_across_thread_counts() {
    let golden = repo_root().join("scenarios/golden.spec");
    let expected = format!(
        "{:?}",
        Simulation::from_spec(&golden_spec())
            .expect("golden spec resolves")
            .run()
    );
    for threads in ["1", "4"] {
        let output = run_cli(&[
            "run",
            golden.to_str().unwrap(),
            "--print-report",
            "--threads",
            threads,
        ]);
        assert_eq!(output.status.code(), Some(0), "threads={threads}");
        assert_eq!(
            report_line(&stdout_of(&output)),
            expected,
            "report drifted at SCENARIO_THREADS={threads}"
        );
    }
}

// ----------------------------------------------------------------- jsonl

#[test]
fn jsonl_stream_on_stdout_is_structurally_valid() {
    let golden = repo_root().join("scenarios/golden.spec");
    let output = run_cli(&[
        "run",
        golden.to_str().unwrap(),
        "--jsonl",
        "-",
        "--every",
        "50",
    ]);
    assert_eq!(output.status.code(), Some(0));
    let stdout = stdout_of(&output);
    let lines: Vec<&str> = stdout.lines().collect();
    assert!(lines.len() >= 3, "run_start + steps + run_end: {stdout}");
    for line in &lines {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "not a JSON object line: {line}"
        );
        assert!(line.contains("\"event\":\""), "no event field: {line}");
    }
    assert!(lines[0].contains("\"event\":\"run_start\""));
    assert!(lines[0].contains("\"label\":\"golden\""));
    assert!(lines[0].contains("\"total_steps\":200"));
    let last = lines.last().unwrap();
    assert!(last.contains("\"event\":\"run_end\""));
    assert!(last.contains("\"seed\":12648430"));
    assert!(last.contains("\"phases\":{"));
    // Step events at 50, 100, 150, 200.
    let steps = lines
        .iter()
        .filter(|l| l.contains("\"event\":\"step\""))
        .count();
    assert_eq!(steps, 4, "step cadence: {stdout}");
    // The human-readable summary must have moved to stderr.
    let err = stderr_of(&output);
    assert!(err.contains("profile:"), "stderr: {err}");
}

// ----------------------------------------------- grid == in-process runs

/// The 18-cell paper mix grid at CI-sized steps (the full 900-step cells
/// would make a debug-build test crawl; identity is step-count agnostic).
fn reduced_mix_cells() -> Vec<collabsim::ScenarioSpec> {
    paper_mix_cells(PhaseConfig {
        training_steps: 40,
        evaluation_steps: 20,
        ..Default::default()
    })
}

#[test]
fn grid_workers_reproduce_in_process_reports_bit_for_bit() {
    let cells = reduced_mix_cells();
    assert_eq!(cells.len(), 18);
    let in_process = ScenarioRunner::default()
        .run_specs(cells.clone())
        .expect("mix cells resolve");

    let out_dir = scratch("grid-identity");
    let summary = run_grid(
        &cells,
        &GridOptions {
            workers: 4,
            retries: 1,
            out_dir: out_dir.clone(),
            worker_bin: PathBuf::from(collabsim_bin()),
            quiet: true,
            warm_start: None,
            resume: false,
        },
    )
    .expect("sweep completes");

    assert_eq!(summary.ok_count(), 18);
    assert_eq!(summary.failed_count(), 0);
    for (cell, expected) in summary.cells.iter().zip(&in_process) {
        let result = cell.result.as_ref().expect("ok cell has a result");
        assert_eq!(result.label, expected.label, "cell order");
        assert_eq!(result.parameter, expected.parameter, "cell parameter");
        assert_eq!(
            result.report_debug,
            format!("{:?}", expected.report),
            "worker report for `{}` differs from the in-process run",
            expected.label
        );
    }
    assert!(summary.manifest_path.is_file(), "manifest written");
    std::fs::remove_dir_all(&out_dir).ok();
}

// ------------------------------------------------------- crash isolation

#[cfg(unix)]
#[test]
fn sigkilled_worker_is_retried_and_the_sweep_completes() {
    let dir = scratch("kill-once");
    let specs_dir = dir.join("specs");
    std::fs::create_dir_all(&specs_dir).unwrap();
    // Three small cells; the kill marker is claimed by exactly one worker,
    // which SIGKILLs itself mid-run. Its retry sees the marker taken and
    // completes normally.
    let base = golden_spec().to_text();
    for (i, seed) in [1u64, 2, 3].iter().enumerate() {
        std::fs::write(
            specs_dir.join(format!("cell{i}.spec")),
            format!("{base}\nseed = {seed}\n"),
        )
        .unwrap();
    }
    let out_dir = dir.join("out");
    let marker = dir.join("kill.marker");
    let output = Command::new(collabsim_bin())
        .args([
            "grid",
            specs_dir.to_str().unwrap(),
            "--workers",
            "2",
            "--retries",
            "1",
            "--out-dir",
            out_dir.to_str().unwrap(),
        ])
        .env(collabsim_cli::KILL_ONCE_ENV, &marker)
        .output()
        .expect("grid runs");
    assert_eq!(
        output.status.code(),
        Some(0),
        "stderr: {}",
        stderr_of(&output)
    );
    assert!(marker.is_file(), "one worker claimed the kill marker");

    let manifest = std::fs::read_to_string(out_dir.join("manifest.json")).unwrap();
    assert!(manifest.contains("\"ok\": 3"), "manifest: {manifest}");
    assert!(manifest.contains("\"failed\": 0"), "manifest: {manifest}");
    // 3 cells + 1 retry of the killed one.
    assert!(manifest.contains("\"attempts\": 4"), "manifest: {manifest}");
    assert!(manifest.contains("\"attempts\": 2"), "manifest: {manifest}");
    let stdout = stdout_of(&output);
    assert!(stdout.contains("re-queued"), "stdout: {stdout}");
    assert!(stdout.contains("killed by signal 9"), "stdout: {stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncated_result_record_is_detected_and_retried() {
    let dir = scratch("truncate-once");
    let specs_dir = dir.join("specs");
    std::fs::create_dir_all(&specs_dir).unwrap();
    // Three small cells; exactly one worker claims the truncation marker
    // and lands a torn half-record (valid header, unparseable body) at its
    // result path while exiting 0. The coordinator must refuse the record,
    // re-queue the cell, and the retry completes the sweep.
    let base = golden_spec().to_text();
    for (i, seed) in [1u64, 2, 3].iter().enumerate() {
        std::fs::write(
            specs_dir.join(format!("cell{i}.spec")),
            format!("{base}\nseed = {seed}\n"),
        )
        .unwrap();
    }
    let out_dir = dir.join("out");
    let marker = dir.join("truncate.marker");
    let output = Command::new(collabsim_bin())
        .args([
            "grid",
            specs_dir.to_str().unwrap(),
            "--workers",
            "2",
            "--retries",
            "1",
            "--out-dir",
            out_dir.to_str().unwrap(),
        ])
        .env(collabsim_cli::TRUNCATE_ONCE_ENV, &marker)
        .output()
        .expect("grid runs");
    assert_eq!(
        output.status.code(),
        Some(0),
        "stderr: {}",
        stderr_of(&output)
    );
    assert!(marker.is_file(), "one worker claimed the truncation marker");

    let manifest = std::fs::read_to_string(out_dir.join("manifest.json")).unwrap();
    assert!(manifest.contains("\"ok\": 3"), "manifest: {manifest}");
    assert!(manifest.contains("\"failed\": 0"), "manifest: {manifest}");
    // 3 cells + 1 retry of the torn-record one.
    assert!(manifest.contains("\"attempts\": 4"), "manifest: {manifest}");
    assert!(manifest.contains("\"attempts\": 2"), "manifest: {manifest}");
    let stdout = stdout_of(&output);
    assert!(
        stdout.contains("without a parseable result record"),
        "stdout: {stdout}"
    );
    assert!(stdout.contains("re-queued"), "stdout: {stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

/// With retries exhausted, a torn result record (worker exited 0 but the
/// record is unparseable) is classified in the manifest as
/// `failure_kind = "torn-record"` with a null exit code — a different
/// diagnosis than a worker that failed through its exit status.
#[test]
fn torn_record_failure_is_classified_in_the_manifest() {
    let dir = scratch("torn-kind");
    let specs_dir = dir.join("specs");
    std::fs::create_dir_all(&specs_dir).unwrap();
    std::fs::write(specs_dir.join("cell.spec"), golden_spec().to_text()).unwrap();
    let out_dir = dir.join("out");
    let marker = dir.join("truncate.marker");
    let output = Command::new(collabsim_bin())
        .args([
            "grid",
            specs_dir.to_str().unwrap(),
            "--workers",
            "1",
            "--retries",
            "0",
            "--out-dir",
            out_dir.to_str().unwrap(),
        ])
        .env(collabsim_cli::TRUNCATE_ONCE_ENV, &marker)
        .output()
        .expect("grid runs");
    assert_eq!(
        output.status.code(),
        Some(0),
        "stderr: {}",
        stderr_of(&output)
    );
    let manifest = std::fs::read_to_string(out_dir.join("manifest.json")).unwrap();
    assert!(manifest.contains("\"failed\": 1"), "manifest: {manifest}");
    assert!(
        manifest.contains("\"failure_kind\": \"torn-record\""),
        "manifest: {manifest}"
    );
    assert!(
        manifest.contains("\"exit_code\": null"),
        "manifest: {manifest}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// A worker that dies with a non-zero exit code is classified as
/// `failure_kind = "worker-exit"` and the manifest records the actual
/// code, so grid consumers can tell a crashed worker from a torn write.
#[test]
fn nonzero_worker_exit_is_classified_with_its_code() {
    let dir = scratch("exit-kind");
    let specs_dir = dir.join("specs");
    std::fs::create_dir_all(&specs_dir).unwrap();
    std::fs::write(specs_dir.join("cell.spec"), golden_spec().to_text()).unwrap();
    let out_dir = dir.join("out");
    let marker = dir.join("exit.marker");
    let output = Command::new(collabsim_bin())
        .args([
            "grid",
            specs_dir.to_str().unwrap(),
            "--workers",
            "1",
            "--retries",
            "0",
            "--out-dir",
            out_dir.to_str().unwrap(),
        ])
        .env(collabsim_cli::EXIT_ONCE_ENV, &marker)
        .output()
        .expect("grid runs");
    assert_eq!(
        output.status.code(),
        Some(0),
        "stderr: {}",
        stderr_of(&output)
    );
    assert!(marker.is_file(), "the worker claimed the exit marker");
    let manifest = std::fs::read_to_string(out_dir.join("manifest.json")).unwrap();
    assert!(manifest.contains("\"failed\": 1"), "manifest: {manifest}");
    assert!(
        manifest.contains("\"failure_kind\": \"worker-exit\""),
        "manifest: {manifest}"
    );
    assert!(
        manifest.contains(&format!("\"exit_code\": {}", collabsim_cli::EXIT_ONCE_CODE)),
        "manifest: {manifest}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn panicking_phase_fails_its_cell_but_not_the_grid() {
    let dir = scratch("chaos");
    let specs_dir = dir.join("specs");
    std::fs::create_dir_all(&specs_dir).unwrap();
    std::fs::write(specs_dir.join("a_chaos.spec"), chaos_panic_spec().to_text()).unwrap();
    std::fs::write(specs_dir.join("b_golden.spec"), golden_spec().to_text()).unwrap();
    let out_dir = dir.join("out");

    // Without RUST_BACKTRACE the worker's panic is a compact two-liner,
    // so the manifest's five-line log tail must capture the message.
    let output = Command::new(collabsim_bin())
        .args([
            "grid",
            specs_dir.to_str().unwrap(),
            "--workers",
            "2",
            "--retries",
            "1",
            "--out-dir",
            out_dir.to_str().unwrap(),
        ])
        .env_remove("RUST_BACKTRACE")
        .output()
        .expect("grid runs");
    // Tolerant by default: the sweep completes, exit 0, failure recorded.
    assert_eq!(
        output.status.code(),
        Some(0),
        "stderr: {}",
        stderr_of(&output)
    );
    let manifest = std::fs::read_to_string(out_dir.join("manifest.json")).unwrap();
    assert!(manifest.contains("\"ok\": 1"), "manifest: {manifest}");
    assert!(manifest.contains("\"failed\": 1"), "manifest: {manifest}");
    assert!(
        manifest.contains("\"status\": \"failed\""),
        "manifest: {manifest}"
    );
    assert!(manifest.contains("worker crashed"), "manifest: {manifest}");
    // The failed cell inlines the tail of its final attempt's worker log,
    // so the manifest alone explains *why* the worker died.
    assert!(manifest.contains("\"log_tail\": ["), "manifest: {manifest}");
    assert!(manifest.contains("panicked"), "manifest: {manifest}");
    let stdout = stdout_of(&output);
    assert!(
        stdout.contains("FAILED after 2 attempts"),
        "stdout: {stdout}"
    );

    // --strict turns the recorded failure into a non-zero exit.
    let strict_out = dir.join("out-strict");
    let output = run_cli(&[
        "grid",
        specs_dir.to_str().unwrap(),
        "--workers",
        "2",
        "--retries",
        "0",
        "--strict",
        "--out-dir",
        strict_out.to_str().unwrap(),
    ]);
    assert_eq!(output.status.code(), Some(1));
    std::fs::remove_dir_all(&dir).ok();
}

// ------------------------------------------------- checkpoint and resume

/// `run --checkpoint-every --store` followed by `resume` from a
/// mid-training snapshot reproduces the uninterrupted run's report byte
/// for byte — the CLI leg of the tentpole's bit-identity guarantee, on
/// the on-disk store backend.
#[test]
fn cli_checkpoint_then_resume_reproduces_the_golden_report() {
    let dir = scratch("checkpoint-resume");
    let store = dir.join("store");
    let golden = repo_root().join("scenarios/golden.spec");
    let output = run_cli(&[
        "run",
        golden.to_str().unwrap(),
        "--checkpoint-every",
        "50",
        "--store",
        store.to_str().unwrap(),
        "--print-report",
    ]);
    assert_eq!(
        output.status.code(),
        Some(0),
        "stderr: {}",
        stderr_of(&output)
    );
    let expected = report_line(&stdout_of(&output));
    assert!(
        stdout_of(&output).contains("checkpoints: 4 snapshots"),
        "steps 50/100/150/200: {}",
        stdout_of(&output)
    );
    // The checkpointed run itself must not perturb the trajectory.
    assert_eq!(
        expected,
        format!("{:?}", Simulation::from_spec(&golden_spec()).unwrap().run()),
        "checkpointing perturbed the report"
    );

    // Sorted keys are chronological; resume from the earliest (step 50,
    // mid-training: both the training tail and the reset still to run).
    let mut snaps: Vec<PathBuf> = std::fs::read_dir(&store)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "snap"))
        .collect();
    snaps.sort();
    assert_eq!(snaps.len(), 4, "store: {snaps:?}");
    let output = run_cli(&["resume", snaps[0].to_str().unwrap(), "--print-report"]);
    assert_eq!(
        output.status.code(),
        Some(0),
        "stderr: {}",
        stderr_of(&output)
    );
    let stdout = stdout_of(&output);
    assert!(stdout.contains("from step 50"), "stdout: {stdout}");
    assert_eq!(
        report_line(&stdout),
        expected,
        "resumed run drifted from the uninterrupted one"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// A truncated snapshot file is refused with the typed `error[snapshot]`
/// and the dedicated exit code 3, not a panic or a generic failure.
#[test]
fn truncated_snapshot_is_a_typed_snapshot_error_with_exit_code_3() {
    let dir = scratch("truncated-snapshot");
    let mut sim = Simulation::from_spec(&golden_spec()).unwrap();
    sim.run_training();
    let snapshot = sim.snapshot(&golden_spec());
    let path = dir.join("good.snap");
    write_snapshot_file(&path, &snapshot).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    let torn = dir.join("torn.snap");
    std::fs::write(&torn, &bytes[..bytes.len() / 2]).unwrap();

    let output = run_cli(&["resume", torn.to_str().unwrap()]);
    assert_eq!(output.status.code(), Some(3), "snapshot errors exit 3");
    let err = stderr_of(&output);
    assert!(err.contains("error[snapshot]"), "stderr: {err}");
    assert!(err.contains("torn.snap"), "stderr: {err}");

    // A missing snapshot takes the same typed path.
    let output = run_cli(&["resume", dir.join("absent.snap").to_str().unwrap()]);
    assert_eq!(output.status.code(), Some(3));
    assert!(
        stderr_of(&output).contains("error[snapshot]"),
        "stderr: {}",
        stderr_of(&output)
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// `grid --warm-start`: every worker forks from the shared equilibrated
/// snapshot and its report is byte-identical to an in-process fork of the
/// same snapshot onto the same cell spec.
#[test]
fn grid_warm_start_forks_match_in_process_forks_bit_for_bit() {
    let dir = scratch("grid-warm");
    let base = golden_spec();
    let mut sim = Simulation::from_spec(&base).unwrap();
    sim.run_training();
    let snapshot = sim.snapshot(&base);
    let snap_path = dir.join("base.snap");
    write_snapshot_file(&snap_path, &snapshot).unwrap();

    // Two cells sharing the base population (relabelled; later spec keys
    // win, exactly like a hand-edited file).
    let cells: Vec<ScenarioSpec> = ["warm-a", "warm-b"]
        .iter()
        .map(|label| {
            ScenarioSpec::parse(&format!("{}\nlabel = {label}\n", base.to_text())).unwrap()
        })
        .collect();
    let expected: Vec<String> = cells
        .iter()
        .map(|cell| {
            let fork = snapshot.with_spec(cell);
            let mut sim = Simulation::resume_from(&fork).unwrap();
            format!("{:?}", sim.finish())
        })
        .collect();

    let out_dir = dir.join("out");
    let summary = run_grid(
        &cells,
        &GridOptions {
            workers: 2,
            retries: 1,
            out_dir: out_dir.clone(),
            worker_bin: PathBuf::from(collabsim_bin()),
            quiet: true,
            warm_start: Some(snap_path),
            resume: false,
        },
    )
    .expect("warm sweep completes");
    assert_eq!(summary.ok_count(), 2);
    for (cell, expected) in summary.cells.iter().zip(&expected) {
        let result = cell.result.as_ref().expect("ok cell has a result");
        assert_eq!(
            &result.report_debug, expected,
            "warm-started worker report for `{}` differs from the in-process fork",
            result.label
        );
        // Warm cells only pay the post-checkpoint remainder.
        assert_eq!(result.total_steps, 80, "remaining evaluation steps");
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// `grid --resume` re-dispatches only the cells the previous sweep left
/// failed or missing; manifest-ok cells are carried over untouched.
#[test]
fn grid_resume_skips_manifest_ok_cells_and_redispatches_failures() {
    let dir = scratch("grid-resume");
    let specs_dir = dir.join("specs");
    std::fs::create_dir_all(&specs_dir).unwrap();
    let base = golden_spec().to_text();
    for (i, seed) in [1u64, 2, 3].iter().enumerate() {
        std::fs::write(
            specs_dir.join(format!("cell{i}.spec")),
            format!("{base}\nseed = {seed}\n"),
        )
        .unwrap();
    }
    let out_dir = dir.join("out");
    let marker = dir.join("kill.marker");
    // First sweep: one worker SIGKILLs itself and, with --retries 0, its
    // cell is recorded failed while the other two complete.
    let output = Command::new(collabsim_bin())
        .args([
            "grid",
            specs_dir.to_str().unwrap(),
            "--workers",
            "1",
            "--retries",
            "0",
            "--out-dir",
            out_dir.to_str().unwrap(),
        ])
        .env(collabsim_cli::KILL_ONCE_ENV, &marker)
        .output()
        .expect("grid runs");
    assert_eq!(
        output.status.code(),
        Some(0),
        "stderr: {}",
        stderr_of(&output)
    );
    let manifest = std::fs::read_to_string(out_dir.join("manifest.json")).unwrap();
    assert!(manifest.contains("\"ok\": 2"), "manifest: {manifest}");
    assert!(manifest.contains("\"failed\": 1"), "manifest: {manifest}");

    // Second sweep with --resume (no kill marker): the two ok cells are
    // skipped, only the failed one is re-dispatched, and it completes.
    let output = run_cli(&[
        "grid",
        specs_dir.to_str().unwrap(),
        "--workers",
        "1",
        "--retries",
        "0",
        "--resume",
        "--out-dir",
        out_dir.to_str().unwrap(),
    ]);
    assert_eq!(
        output.status.code(),
        Some(0),
        "stderr: {}",
        stderr_of(&output)
    );
    let stdout = stdout_of(&output);
    assert_eq!(
        stdout.matches("skipped (already ok in manifest)").count(),
        2,
        "stdout: {stdout}"
    );
    let manifest = std::fs::read_to_string(out_dir.join("manifest.json")).unwrap();
    assert!(manifest.contains("\"ok\": 3"), "manifest: {manifest}");
    assert!(manifest.contains("\"failed\": 0"), "manifest: {manifest}");
    std::fs::remove_dir_all(&dir).ok();
}

// ------------------------------------------------------------- subcommands

#[test]
fn help_prints_usage_and_exits_zero() {
    let output = run_cli(&["help"]);
    assert_eq!(output.status.code(), Some(0));
    let stdout = stdout_of(&output);
    for subcommand in ["run", "resume", "grid", "worker", "scaffold"] {
        assert!(stdout.contains(subcommand), "usage lists {subcommand}");
    }
    // No arguments at all behaves the same way.
    let output = run_cli(&[]);
    assert_eq!(output.status.code(), Some(0));
}

#[test]
fn worker_writes_a_parseable_result_record() {
    let dir = scratch("worker-record");
    let spec_path = dir.join("cell.spec");
    std::fs::write(&spec_path, golden_spec().to_text()).unwrap();
    let out_path = dir.join("cell.result");
    let output = run_cli(&[
        "worker",
        "--spec",
        spec_path.to_str().unwrap(),
        "--out",
        out_path.to_str().unwrap(),
    ]);
    assert_eq!(
        output.status.code(),
        Some(0),
        "stderr: {}",
        stderr_of(&output)
    );
    let record = std::fs::read_to_string(&out_path).unwrap();
    let result = collabsim_cli::parse_cell_result(&record).expect("record parses");
    assert_eq!(result.label, "golden");
    assert_eq!(result.total_steps, 200);
    let expected = format!(
        "{:?}",
        Simulation::from_spec(&golden_spec())
            .expect("golden spec resolves")
            .run()
    );
    assert_eq!(result.report_debug, expected);
    std::fs::remove_dir_all(&dir).ok();
}
