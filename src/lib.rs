//! Workspace umbrella crate: re-exports the public API of every member crate
//! so the examples and integration tests in the repository root can use a
//! single import path.

pub use collabsim;
pub use collabsim_cli as cli;
pub use collabsim_gametheory as gametheory;
pub use collabsim_netsim as netsim;
pub use collabsim_reputation as reputation;
pub use collabsim_rl as rl;
