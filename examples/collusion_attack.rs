//! A collusion attack through the adversary subsystem.
//!
//! Declares a network in which a collusion ring (full sharers that
//! cross-vote each other's destructive edits) and a sybil-slander cell
//! (contribute nothing, vote against every honest edit, cycle identities
//! when caught) attack the paper's incentive scheme — while service
//! differentiation runs on *propagated* (EigenTrust) reputation instead of
//! the globally visible ledger. Everything is a `ScenarioSpec`: no engine
//! edits, no custom pipeline code, and the whole attack round-trips
//! through the text format.
//!
//! Run with `cargo run --release --example collusion_attack`.

use collabsim_workspace::collabsim::adversary::{AdversarySpec, AttackMetricsObserver};
use collabsim_workspace::collabsim::{BehaviorMix, PhaseConfig, ScenarioSpec, Simulation};
use collabsim_workspace::reputation::propagation::PropagationScheme;

fn main() {
    // --- declare the attack ------------------------------------------------
    let spec = ScenarioSpec::builder()
        .label("example/collusion-attack")
        .population(60)
        .initial_articles(30)
        .mix(BehaviorMix::new(0.4, 0.4, 0.2))
        .phase_config(PhaseConfig {
            training_steps: 800,
            evaluation_steps: 400,
            ..Default::default()
        })
        // A six-peer collusion ring and a four-identity sybil cell. Peers
        // are claimed from the top of the id range, in unit order.
        .adversary(AdversarySpec::new("collusion-ring", 6))
        .adversary(AdversarySpec::new("sybil-slander", 4))
        // Service decisions read EigenTrust's propagated reputation (every
        // 50 steps) instead of the ledger — the realistic deployment the
        // paper assumes away.
        .propagation(PropagationScheme::EigenTrust, 50)
        .propagated_reputation()
        .seed(0x0C01_10DE)
        .build()
        .expect("the attack spec is valid");

    // The spec is serializable; the attack travels as plain text.
    let text = spec.to_text();
    let reparsed = ScenarioSpec::parse(&text).expect("specs round-trip");
    assert_eq!(reparsed, spec);
    println!(
        "--- spec ({} adversary units) ---",
        spec.config().adversaries.len()
    );
    for line in text.lines().filter(|l| l.starts_with("adversary")) {
        println!("{line}");
    }
    println!();

    // --- run it with attack metrics ---------------------------------------
    let mut sim = Simulation::from_spec(&spec).expect("built-in strategies resolve");
    sim.add_observer(AttackMetricsObserver::new());
    let report = sim.run();

    println!("--- outcome -----------------------------------------------------");
    println!(
        "article quality {:.3}, accepted destructive edits {}, declined constructive {}",
        report.mean_article_quality,
        report.edit_outcomes.accepted_destructive,
        report.edit_outcomes.declined_constructive,
    );
    println!();
    println!(
        "{:<16} {:>8} {:>9} {:>9} {:>7} {:>7} {:>8}",
        "unit", "damage", "dstr-acc", "retained", "resets", "votes", "detect"
    );
    let observer: &AttackMetricsObserver = sim.observer(0).expect("attached above");
    for (unit, metrics) in sim
        .world()
        .adversaries
        .units()
        .iter()
        .zip(observer.metrics())
    {
        println!(
            "{:<16} {:>8.1} {:>9} {:>9.4} {:>7} {:>7} {:>8}",
            unit.name(),
            metrics.damage_bandwidth,
            metrics.destructive_accepted,
            metrics.mean_reputation_retained(),
            unit.stats().resets,
            unit.stats().override_votes,
            metrics
                .first_detection
                .map_or("never".to_string(), |s| format!("@{s}")),
        );
    }
    println!();
    println!(
        "(the punishment machinery revoked rights {} times across both units)",
        observer
            .metrics()
            .iter()
            .map(|m| m.rights_revocations())
            .sum::<u64>()
    );
}
