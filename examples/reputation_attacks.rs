//! Attacking the reputation system: collusion and whitewashing.
//!
//! The paper assumes a safe reputation-propagation mechanism and keeps
//! `R_min` low to blunt whitewashing. This example builds the attacks and
//! measures how the propagation substrates and the newcomer-reputation
//! choice hold up:
//!
//! * a collusion clique that assigns itself enormous local trust is ranked
//!   by undamped EigenTrust, damped EigenTrust and MaxFlow trust;
//! * a whitewashing free-rider is compared against an honest newcomer under
//!   the paper's `R_min = 0.05` and under a generous `R_min = 0.4`.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example reputation_attacks
//! ```

use collabsim_workspace::reputation::attack::{collusion_clique, whitewashing_gain};
use collabsim_workspace::reputation::function::{LogisticReputation, ReputationFunction};
use collabsim_workspace::reputation::propagation::eigentrust::EigenTrust;
use collabsim_workspace::reputation::propagation::maxflow::MaxFlowTrust;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);

    // --- collusion ----------------------------------------------------------
    let (graph, scenario) = collusion_clique(20, 4, 300.0, 0.5, &mut rng);
    println!("== collusion clique: 20 peers, 4 colluders boosting each other ==");

    let undamped = EigenTrust::new(0.0, vec![]).compute(&graph);
    let damped =
        EigenTrust::new(0.25, scenario.honest().into_iter().take(4).collect()).compute(&graph);
    let observer = scenario.honest()[0];
    let maxflow = MaxFlowTrust::new().reputation_from(&graph, observer);

    let mean = |values: &[f64], set: &[usize]| -> f64 {
        set.iter().map(|&i| values[i]).sum::<f64>() / set.len() as f64
    };
    let honest = scenario.honest();
    println!(
        "{:<34} {:>12} {:>12}",
        "substrate", "honest mean", "clique mean"
    );
    for (name, values) in [
        ("EigenTrust, no damping", &undamped.values),
        ("EigenTrust, damped + pre-trusted", &damped.values),
        ("MaxFlow from an honest observer", &maxflow.values),
    ] {
        println!(
            "{:<34} {:>12.4} {:>12.4}",
            name,
            mean(values, &honest),
            mean(values, &scenario.attackers)
        );
    }
    println!(
        "→ max-flow trust bounds the clique by the honest→clique cut; damping helps EigenTrust.\n"
    );

    // --- whitewashing ---------------------------------------------------------
    println!("== whitewashing: does discarding the identity pay off? ==");
    println!(
        "{:<34} {:>10} {:>22} {:>18}",
        "newcomer reputation choice", "R_min", "bandwidth vs sharer", "gain over punished"
    );
    for (label, g) in [
        ("paper's R_min = 0.05 (g = 19)", 19.0),
        ("generous R_min = 0.4 (g = 1.5)", 1.5),
    ] {
        let function = LogisticReputation::new(g, 0.2);
        let r_min = function.minimum();
        let contributor = function.reputation(24.0);
        // Bandwidth share a freshly whitewashed identity gets when competing
        // with one steady contributor for the same source.
        let whitewasher_share = r_min / (r_min + contributor);
        // A punished peer's reputation is reset to the minimum of the same
        // function, so the gain of swapping identities is the difference
        // between the newcomer value and that floor — zero when R_min is the
        // floor itself, positive only if newcomers were treated better than
        // punished peers.
        let gain = whitewashing_gain(r_min, function.minimum());
        println!(
            "{label:<34} {r_min:>10.2} {:>21.1}% {gain:>+18.3}",
            whitewasher_share * 100.0
        );
    }
    println!(
        "→ with the paper's low R_min a whitewashed identity competes for bandwidth at ~5% weight"
    );
    println!("  against an established sharer, so shedding a bad history buys almost nothing; a generous");
    println!(
        "  newcomer reputation would instead hand free-riders roughly a third of the bandwidth."
    );
}
