//! The game theory behind the incentive scheme.
//!
//! This example reproduces the paper's Section-II argument with the
//! `collabsim-gametheory` crate: (1) without service differentiation the
//! one-shot sharing game has free-riding as its unique equilibrium, (2) the
//! repeated Prisoner's Dilemma rewards reciprocity (which is why BitTorrent's
//! tit-for-tat works for direct relations), and (3) with reputation-based
//! service differentiation the paper's own utility function makes sharing
//! pay even without direct relations.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example freerider_economics
//! ```

use collabsim_workspace::gametheory::equilibrium::analyze;
use collabsim_workspace::gametheory::payoff::{BimatrixGame, PayoffMatrix};
use collabsim_workspace::gametheory::prisoners::PrisonersDilemma;
use collabsim_workspace::gametheory::tournament::{standard_factories, Tournament};
use collabsim_workspace::gametheory::utility::{SharingObservation, UtilityModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // --- 1. the one-shot sharing game without incentives --------------------
    let benefit = 2.0;
    let cost = 1.0;
    let no_incentive = BimatrixGame::symmetric(PayoffMatrix::from_rows(
        2,
        2,
        &[benefit - cost, -cost, benefit, 0.0],
    ));
    let report = analyze(&no_incentive);
    println!("== sharing game without service differentiation ==");
    println!("actions: 0 = share, 1 = free-ride");
    println!("pure Nash equilibria: {:?}", report.equilibria);
    println!(
        "strictly dominant actions (row player): {:?}",
        report.dominant_row_actions
    );
    println!("→ free-riding dominates; nobody shares.\n");

    // --- 2. the repeated game: why tit-for-tat works for direct relations ---
    let tournament = Tournament::new(PrisonersDilemma::axelrod(), 200, 5);
    let mut rng = StdRng::seed_from_u64(1984);
    let result = tournament.run(&standard_factories(), &mut rng);
    println!("== Axelrod tournament (repeated Prisoner's Dilemma, 200 rounds) ==");
    print!("{}", result.to_table());
    println!("winner: {}", result.winner());
    println!("→ reciprocal strategies dominate a mixed population, but they need *direct* repeated relations.\n");

    // --- 3. the paper's utility under reputation-based differentiation ------
    let model = UtilityModel::default();
    println!("== the paper's sharing utility U_S under service differentiation ==");
    let scenarios = [
        ("full sharer, high reputation share", 1.0, 0.6, 1.0, 1.0),
        ("full sharer, no differentiation", 1.0, 0.33, 1.0, 1.0),
        ("free-rider, no differentiation", 1.0, 0.33, 0.0, 0.0),
        ("free-rider, differentiated down", 1.0, 0.05, 0.0, 0.0),
    ];
    for (label, source_upload, share, disk, upload) in scenarios {
        let utility = model.sharing_utility(&SharingObservation {
            source_upload,
            bandwidth_share: share,
            disk_share: disk,
            own_upload: upload,
        });
        println!("{label:<38} U_S = {utility:+.2}");
    }
    println!();
    println!(
        "→ with differentiation the contributor's utility exceeds the free-rider's ({:+.2} vs {:+.2});",
        model.sharing_utility(&SharingObservation {
            source_upload: 1.0,
            bandwidth_share: 0.6,
            disk_share: 1.0,
            own_upload: 1.0
        }),
        model.freeride_utility(1.0, 0.05)
    );
    println!("  without it, free-riding wins — exactly the gap the reputation scheme closes.");
}
