//! Scenario grids on the parallel runner, with reputation propagation.
//!
//! Declares a (mix × incentive scheme × seed) grid over a reduced
//! configuration, executes it on the work-stealing `ScenarioRunner`, checks
//! the parallel run against sequential execution, and shows the optional
//! propagation phase turning upload history into a global reputation
//! vector.
//!
//! Run with `cargo run --release --example scenario_grid`.

use collabsim_workspace::collabsim::experiment::{ScenarioGrid, ScenarioRunner};
use collabsim_workspace::collabsim::{
    BehaviorMix, BehaviorType, IncentiveScheme, PhaseConfig, Simulation, SimulationConfig,
};
use collabsim_workspace::reputation::propagation::PropagationScheme;

fn main() {
    let base = SimulationConfig {
        population: 30,
        initial_articles: 15,
        phases: PhaseConfig {
            training_steps: 400,
            evaluation_steps: 200,
            ..Default::default()
        },
        ..Default::default()
    };

    // --- a 2 × 2 × 2 grid, executed in parallel ----------------------------
    let grid = ScenarioGrid::new(base.clone())
        .with_mixes([
            ("balanced", 0.0, BehaviorMix::new(0.4, 0.3, 0.3)),
            ("rational-heavy", 1.0, BehaviorMix::new(0.8, 0.1, 0.1)),
        ])
        .with_schemes([IncentiveScheme::ReputationBased, IncentiveScheme::None])
        .with_seeds([11, 12]);
    println!("running a {}-cell grid in parallel...", grid.len());
    let reports = ScenarioRunner::default().run_grid(&grid);
    println!("{:<38} {:>9} {:>10}", "cell", "articles", "bandwidth");
    for r in &reports {
        println!(
            "{:<38} {:>9.4} {:>10.4}",
            r.label, r.report.shared_articles, r.report.shared_bandwidth
        );
    }

    // --- parallel execution is bit-identical to sequential -----------------
    let sequential = ScenarioRunner::sequential().run_grid(&grid);
    assert_eq!(reports, sequential);
    println!("\nparallel == sequential: per-cell reports are bit-identical");

    // --- the propagation phase observes the trust the uploads built -------
    let mut sim = Simulation::new(
        base.with_mix(BehaviorMix::new(0.0, 0.5, 0.5))
            .with_propagation(PropagationScheme::EigenTrust, 50),
    );
    println!("\npipeline phases: {:?}", sim.pipeline().phase_names());
    sim.run();
    let global = sim.global_reputation().expect("propagation ran");
    let mean = |ty: BehaviorType| {
        let peers: Vec<usize> = (0..30).filter(|&p| sim.behavior(p) == ty).collect();
        peers.iter().map(|&p| global.values[p]).sum::<f64>() / peers.len() as f64
    };
    println!(
        "eigentrust global reputation (mean): altruistic {:.4} vs irrational {:.4} \
         ({} propagation runs, converged: {})",
        mean(BehaviorType::Altruistic),
        mean(BehaviorType::Irrational),
        sim.world().propagation_runs,
        global.converged,
    );
}
