//! A churn scenario through the declarative `ScenarioSpec` API.
//!
//! Builds a whitewash-stressed network as a spec (no engine edits, no
//! custom pipeline code), serializes it to the text format and back, runs
//! it with a churn-timeline observer attached, and prints the Section-VI
//! reputation-persistence numbers: how much reputation re-entrant
//! identities kept and how much whitewashers shed.
//!
//! Run with `cargo run --release --example churn_scenario`.

use collabsim_workspace::collabsim::observer::ChurnTimelineObserver;
use collabsim_workspace::collabsim::results::churn_summary;
use collabsim_workspace::collabsim::{BehaviorMix, PhaseConfig, ScenarioSpec, Simulation};
use collabsim_workspace::netsim::churn::ChurnModel;

fn main() {
    // --- declare the scenario ---------------------------------------------
    // Background churn (joins and departures) plus aggressive whitewashing:
    // every step each peer whitewashes with probability 0.3 %.
    let spec = ScenarioSpec::builder()
        .label("example/churn")
        .population(60)
        .initial_articles(30)
        .mix(BehaviorMix::new(0.5, 0.25, 0.25))
        .phase_config(PhaseConfig {
            training_steps: 800,
            evaluation_steps: 400,
            ..Default::default()
        })
        .churn(ChurnModel {
            join_probability: 0.15,
            leave_probability: 0.002,
            whitewash_probability: 0.003,
        })
        .seed(42)
        .build()
        .expect("the spec builder validates every field");
    println!("phase order: {:?}", spec.phases());

    // --- the spec is a document -------------------------------------------
    let text = spec.to_text();
    println!(
        "\nserialized spec ({} lines):\n{text}",
        text.lines().count()
    );
    let reparsed = ScenarioSpec::parse(&text).expect("rendered specs parse back");
    assert_eq!(reparsed, spec, "the text round trip is exact");

    // --- run it, observing ------------------------------------------------
    let mut sim = Simulation::from_spec(&spec).expect("churn is a registered phase");
    sim.add_observer(ChurnTimelineObserver::new());
    let report = sim.run();

    println!(
        "shared articles {:.4}, shared bandwidth {:.4}, {} downloads",
        report.shared_articles, report.shared_bandwidth, report.completed_downloads
    );
    println!();
    print!(
        "{}",
        churn_summary(&sim.world().churn_stats, sim.config().min_reputation)
    );

    let timeline: &ChurnTimelineObserver = sim.observer(0).expect("attached above");
    let min_online = timeline.timeline().iter().map(|p| p.online).min().unwrap();
    let final_online = timeline.timeline().last().unwrap().online;
    println!("online peers: never below {min_online}, {final_online} at the end");

    // Reputation persisted across absences: re-entrant identities came back
    // well above the newcomer minimum.
    let stats = sim.world().churn_stats;
    assert!(stats.joins > 0 && stats.whitewashes > 0);
    assert!(stats.mean_reentry_reputation() > sim.config().min_reputation);
    println!("\nre-entry reputation exceeds the newcomer minimum: persistence works");
}
