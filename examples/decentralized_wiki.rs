//! A decentralized wiki, built from the substrate crates directly.
//!
//! The paper's motivating application is a P2P collaboration network in
//! which peers store articles, download them from each other, edit them and
//! vote on edits. This example wires the substrate APIs together by hand —
//! without the simulation engine — to show how a downstream application
//! would use them: articles are placed via the DHT, downloads compete for a
//! source's bandwidth under reputation-proportional allocation, an edit goes
//! through a weighted vote, and a vandal ends up punished.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example decentralized_wiki
//! ```

use collabsim_workspace::netsim::article::{ArticleRegistry, EditKind};
use collabsim_workspace::netsim::bandwidth::{
    AllocationPolicy, BandwidthAllocator, DownloadRequest,
};
use collabsim_workspace::netsim::dht::{Dht, DhtKey};
use collabsim_workspace::netsim::peer::{PeerId, PeerRegistry};
use collabsim_workspace::netsim::storage::ArticleStore;
use collabsim_workspace::reputation::contribution::SharingAction;
use collabsim_workspace::reputation::ledger::ReputationLedger;
use collabsim_workspace::reputation::punishment::PunishmentPolicy;
use collabsim_workspace::reputation::service::ServiceDifferentiation;

fn main() {
    // --- the network ------------------------------------------------------
    let population = 8;
    let mut peers = PeerRegistry::with_population(population);
    let mut ledger = ReputationLedger::with_paper_defaults(population);
    let service = ServiceDifferentiation::paper_defaults();
    let punishment = PunishmentPolicy::default();
    let mut articles = ArticleRegistry::new();
    let mut store = ArticleStore::new();
    let mut dht = Dht::new(3);
    for p in 0..population {
        dht.join(PeerId(p as u32));
    }

    // --- peer 0 publishes an article ---------------------------------------
    let author = PeerId(0);
    let article = articles.create_article(author, 0);
    let key = DhtKey::for_article(article.0);
    store.add_replica(author, article);
    for holder in dht.store(key) {
        store.add_replica(holder, article);
    }
    println!(
        "article {article} published by {author}; replicas on {:?}",
        store.holding_peers(article)
    );

    // --- contributions raise reputation -------------------------------------
    // Peers 0 and 1 share storage and bandwidth; peer 7 free-rides.
    for (peer, articles_shared, bandwidth) in [(0usize, 20.0, 1.0), (1, 10.0, 0.5), (7, 0.0, 0.0)] {
        ledger.record_sharing(
            peer,
            &SharingAction {
                shared_articles: articles_shared,
                shared_bandwidth: bandwidth,
            },
        );
    }
    for p in [0usize, 1, 7] {
        println!(
            "peer {p}: sharing reputation R_S = {:.3}",
            ledger.sharing_reputation(p)
        );
    }

    // --- competing downloads: reputation-proportional bandwidth -------------
    peers.peer_mut(PeerId(0)).set_shared_upload_fraction(1.0);
    let lookup = dht.lookup(PeerId(5), key);
    println!(
        "peer#5 located the article in {} hops; holders: {:?}",
        lookup.hops, lookup.holders
    );
    let allocator = BandwidthAllocator::new(AllocationPolicy::WeightedByReputation);
    let requests: Vec<DownloadRequest> = [1usize, 7]
        .iter()
        .map(|&p| DownloadRequest {
            downloader: PeerId(p as u32),
            sharing_reputation: ledger.sharing_reputation(p),
            download_capacity: 1.0,
            uploaded_to_source: 0.0,
        })
        .collect();
    for allocation in allocator.allocate(peers.peer(PeerId(0)).offered_upload(), &requests) {
        println!(
            "download from peer#0: {} receives {:.2} of the upload bandwidth",
            allocation.downloader, allocation.bandwidth
        );
    }

    // --- a constructive edit goes through a weighted vote -------------------
    let editor = PeerId(1);
    let edit = articles
        .submit_edit(article, editor, EditKind::Constructive, 1)
        .expect("no pending edit");
    let voters = [PeerId(0), PeerId(2), PeerId(7)];
    let reputations: Vec<f64> = voters
        .iter()
        .map(|v| ledger.editing_reputation(v.index()))
        .collect();
    let powers = service.voting_powers(&reputations);
    // Peers 0 and 2 support the edit, the vandal (7) votes against.
    let in_favor = powers[0] + powers[1];
    let against = powers[2];
    let accepted =
        service.edit_accepted(ledger.editing_reputation(editor.index()), in_favor, against);
    articles.resolve_edit(edit, accepted, 2);
    println!(
        "constructive edit by {editor}: in-favour power {:.2}, against {:.2} → {}",
        in_favor,
        against,
        if accepted { "ACCEPTED" } else { "declined" }
    );
    punishment.on_unsuccessful_vote(&mut ledger, 7);

    // --- a vandal is punished ------------------------------------------------
    for round in 0..4 {
        if let Some(bad_edit) =
            articles.submit_edit(article, PeerId(7), EditKind::Destructive, 3 + round)
        {
            articles.resolve_edit(bad_edit, false, 3 + round);
            let outcome = punishment.on_declined_edit(&mut ledger, 7);
            println!("vandal edit #{round} declined → punishment outcome: {outcome:?}");
        }
    }
    println!(
        "vandal can still edit: {}   vandal reputation after punishment: {:.3}",
        ledger.can_edit(7),
        ledger.sharing_reputation(7)
    );
    println!(
        "article quality after the episode: {:.2}",
        articles.article(article).quality()
    );
}
