//! Quickstart: configure and run one collabsim simulation.
//!
//! Builds the paper's Section-IV model at a reduced scale (so the example
//! finishes in a couple of seconds), runs the training phase, the reputation
//! reset and the measured evaluation phase, and prints the headline metrics
//! the paper's figures are made of.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use collabsim_workspace::collabsim::results::behavior_table;
use collabsim_workspace::collabsim::{
    BehaviorMix, BehaviorType, IncentiveScheme, PhaseConfig, Simulation, SimulationConfig,
};

fn main() {
    // A 50-peer network: 60 % rational learners, 20 % altruists, 20 %
    // irrational peers, governed by the reputation-based incentive scheme.
    let config = SimulationConfig {
        population: 50,
        initial_articles: 25,
        phases: PhaseConfig {
            training_steps: 2_000,
            evaluation_steps: 800,
            ..Default::default()
        },
        ..Default::default()
    }
    .with_mix(BehaviorMix::new(0.6, 0.2, 0.2))
    .with_incentive(IncentiveScheme::ReputationBased)
    .with_seed(42);

    println!(
        "running {} peers for {} training + {} evaluation steps...",
        config.population, config.phases.training_steps, config.phases.evaluation_steps
    );

    let mut simulation = Simulation::new(config);
    let report = simulation.run();

    println!();
    println!("== headline metrics (evaluation phase) ==");
    println!(
        "shared articles  (population mean): {:.3}",
        report.shared_articles
    );
    println!(
        "shared bandwidth (population mean): {:.3}",
        report.shared_bandwidth
    );
    println!(
        "constructive fraction of rational edits: {:.3}",
        report.rational_constructive_fraction()
    );
    println!(
        "constructive edits accepted: {:.1} %   destructive edits accepted: {:.1} %",
        report.constructive_acceptance_rate() * 100.0,
        report.destructive_acceptance_rate() * 100.0
    );
    println!("mean article quality: {:.3}", report.mean_article_quality);
    println!("completed downloads: {}", report.completed_downloads);

    println!();
    println!("== per-behaviour breakdown ==");
    println!("{}", behavior_table(&report));

    let rational = report.breakdown(BehaviorType::Rational);
    let irrational = report.breakdown(BehaviorType::Irrational);
    println!(
        "service differentiation at work: rational peers downloaded {:.3} per step, free-riders {:.3}",
        rational.downloaded, irrational.downloaded
    );
}
