//! Cross-crate integration tests: the full simulation pipeline from
//! configuration to report, across incentive schemes and behaviour mixes.

use collabsim_workspace::collabsim::{
    BehaviorMix, BehaviorType, IncentiveScheme, PhaseConfig, Simulation, SimulationConfig,
};

fn small_config() -> SimulationConfig {
    SimulationConfig {
        population: 24,
        initial_articles: 12,
        phases: PhaseConfig {
            training_steps: 200,
            evaluation_steps: 120,
            ..Default::default()
        },
        ..Default::default()
    }
}

#[test]
fn full_run_report_respects_basic_invariants() {
    for incentive in IncentiveScheme::ALL {
        let config = small_config()
            .with_mix(BehaviorMix::new(0.5, 0.25, 0.25))
            .with_incentive(incentive)
            .with_seed(11);
        let report = Simulation::new(config).run();
        assert_eq!(report.evaluation_steps, 120, "{incentive:?}");
        assert!(
            (0.0..=1.0).contains(&report.shared_articles),
            "{incentive:?}: shared articles {}",
            report.shared_articles
        );
        assert!(
            (0.0..=1.0).contains(&report.shared_bandwidth),
            "{incentive:?}: shared bandwidth {}",
            report.shared_bandwidth
        );
        assert!(
            report.mean_article_quality > 0.0 && report.mean_article_quality <= 1.0,
            "{incentive:?}: quality {}",
            report.mean_article_quality
        );
        let peers: usize = BehaviorType::ALL
            .iter()
            .map(|&b| report.breakdown(b).peers)
            .sum();
        assert_eq!(peers, 24, "{incentive:?}: all peers accounted for");
    }
}

#[test]
fn simulation_is_deterministic_per_seed_across_schemes() {
    for incentive in [IncentiveScheme::ReputationBased, IncentiveScheme::None] {
        let config = small_config()
            .with_mix(BehaviorMix::new(0.4, 0.3, 0.3))
            .with_incentive(incentive)
            .with_seed(777);
        let a = Simulation::new(config.clone()).run();
        let b = Simulation::new(config).run();
        assert_eq!(a, b, "{incentive:?}: same seed must reproduce the report");
    }
}

#[test]
fn behaviour_types_keep_their_fixed_policies_end_to_end() {
    let config = small_config()
        .with_mix(BehaviorMix::new(0.0, 0.5, 0.5))
        .with_seed(5);
    let report = Simulation::new(config).run();
    let altruistic = report.breakdown(BehaviorType::Altruistic);
    let irrational = report.breakdown(BehaviorType::Irrational);
    // Altruists always share everything and never vandalise.
    assert!((altruistic.shared_articles - 1.0).abs() < 1e-9);
    assert!((altruistic.shared_bandwidth - 1.0).abs() < 1e-9);
    assert_eq!(altruistic.destructive_edits, 0);
    // Irrational peers never share and never act constructively.
    assert_eq!(irrational.shared_articles, 0.0);
    assert_eq!(irrational.shared_bandwidth, 0.0);
    assert_eq!(irrational.constructive_edits, 0);
}

#[test]
fn incentive_scheme_differentiates_downloads_towards_contributors() {
    let config = small_config()
        .with_mix(BehaviorMix::new(0.0, 0.5, 0.5))
        .with_incentive(IncentiveScheme::ReputationBased)
        .with_seed(21);
    let report = Simulation::new(config).run();
    let altruistic = report.breakdown(BehaviorType::Altruistic);
    let irrational = report.breakdown(BehaviorType::Irrational);
    assert!(
        altruistic.downloaded > irrational.downloaded,
        "contributors should receive more bandwidth: {} vs {}",
        altruistic.downloaded,
        irrational.downloaded
    );
    assert!(
        altruistic.final_sharing_reputation > irrational.final_sharing_reputation,
        "contributors should end with higher reputation"
    );
}

#[test]
fn majority_following_emerges_for_rational_editors() {
    // Figure 7's qualitative claim at integration-test scale: rational peers
    // act more constructively under an altruistic majority than under an
    // irrational majority.
    let altruistic_majority = small_config()
        .with_mix(BehaviorMix::sweep(BehaviorType::Altruistic, 0.7))
        .with_seed(31);
    let irrational_majority = small_config()
        .with_mix(BehaviorMix::sweep(BehaviorType::Irrational, 0.7))
        .with_seed(31);
    let constructive_under_altruists = Simulation::new(altruistic_majority)
        .run()
        .rational_constructive_fraction();
    let constructive_under_vandals = Simulation::new(irrational_majority)
        .run()
        .rational_constructive_fraction();
    assert!(
        constructive_under_altruists > constructive_under_vandals,
        "rational peers should follow the majority: {constructive_under_altruists} vs {constructive_under_vandals}"
    );
}

#[test]
fn quality_is_protected_under_the_scheme_with_constructive_majority() {
    // The paper notes the scheme only protects quality when constructive
    // peers clearly outnumber destructive ones initially; use such a mix.
    let config = small_config()
        .with_mix(BehaviorMix::new(0.1, 0.7, 0.2))
        .with_incentive(IncentiveScheme::ReputationBased)
        .with_seed(41);
    let report = Simulation::new(config).run();
    assert!(report.edit_outcomes.decided() > 0);
    assert!(
        report.constructive_acceptance_rate() > report.destructive_acceptance_rate(),
        "constructive edits should fare better than destructive ones: {} vs {}",
        report.constructive_acceptance_rate(),
        report.destructive_acceptance_rate()
    );
}
