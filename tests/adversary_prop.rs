//! Property and integration tests of the adversary subsystem:
//!
//! * **Inertness** — a spec whose pipeline contains the `adversary` phase
//!   but whose adversary list is empty is bit-identical to the pre-PR
//!   pipeline without the phase, for arbitrary configurations.
//! * **Round trip** — specs carrying arbitrary `AdversarySpec` lists
//!   survive the text-format build → serialize → parse → build round trip
//!   exactly.
//! * **Determinism** — adversary-enabled specs produce bit-identical
//!   reports under parallel and sequential scenario execution.
//! * **Effectiveness** — the adaptive whitewasher demonstrably beats the
//!   naive stochastic whitewasher (higher reputation retained, fewer
//!   punishments) at a comparable reset volume.

use collabsim_workspace::collabsim::adversary::{AdversarySpec, AttackMetricsObserver};
use collabsim_workspace::collabsim::config::PhaseConfig;
use collabsim_workspace::collabsim::spec::ScenarioSpec;
use collabsim_workspace::collabsim::{
    BehaviorMix, IncentiveScheme, ScenarioRunner, Simulation, SimulationConfig,
};
use proptest::prelude::*;

/// A short arbitrary configuration (no adversaries).
fn base_config(
    population: usize,
    mix_raw: (u32, u32, u32),
    scheme_kind: u32,
    seed: u64,
    edit_pct: u32,
) -> SimulationConfig {
    let (r, a, i) = mix_raw;
    let total = (r + a + i).max(1) as f64;
    let mix = BehaviorMix::new(
        f64::from(r) / total,
        f64::from(a) / total,
        (total - f64::from(r) - f64::from(a)) / total,
    );
    SimulationConfig {
        population,
        initial_articles: population / 2 + 2,
        phases: PhaseConfig {
            training_steps: 40,
            evaluation_steps: 20,
            ..Default::default()
        },
        edit_probability: f64::from(edit_pct % 101) / 100.0,
        ..Default::default()
    }
    .with_mix(mix)
    .with_incentive(IncentiveScheme::ALL[scheme_kind as usize % 3])
    .with_seed(seed)
}

/// The five built-in strategy names, selectable by index.
const STRATEGIES: [&str; 5] = [
    "adaptive-whitewash",
    "naive-whitewash",
    "collusion-ring",
    "oscillating-freerider",
    "sybil-slander",
];

proptest! {
    /// (a) A spec with an **empty adversary list** whose phase order
    /// explicitly includes the `adversary` phase is bit-identical to the
    /// pre-PR pipeline (no adversary phase at all) — the phase is provably
    /// inert without configured units.
    #[test]
    fn empty_adversary_list_is_bit_identical_to_the_prepr_pipeline(
        population in 8usize..20,
        mix_raw in (0u32..5, 0u32..5, 1u32..5),
        scheme_kind in 0u32..3,
        seed in 0u64..1_000_000,
        edit_pct in 0u32..101,
    ) {
        let config = base_config(population, mix_raw, scheme_kind, seed, edit_pct);
        prop_assert!(config.adversaries.is_empty());
        let without_phase = Simulation::new(config.clone()).run();
        let spec = ScenarioSpec::builder()
            .configure(|c| *c = config)
            .phase_order([
                "adversary",
                "selection",
                "sharing",
                "download",
                "edit-vote",
                "utility",
                "learning",
            ])
            .build()
            .expect("generated specs are valid");
        let with_phase = Simulation::from_spec(&spec).expect("resolves").run();
        prop_assert_eq!(without_phase, with_phase, "empty adversary phase must be inert");
    }

    /// (b) Specs carrying arbitrary adversary lists survive the
    /// build → serialize → parse → build round trip exactly (spec equality
    /// covers strategy names, counts and parameters bit-for-bit).
    #[test]
    fn adversary_specs_survive_the_text_round_trip(
        population in 12usize..24,
        seed in 0u64..1_000_000,
        picks in proptest::collection::vec((0u32..5, 1usize..3, 0u32..3), 0..4),
    ) {
        let mut builder = ScenarioSpec::builder()
            .label(format!("adversary-prop/{seed}"))
            .population(population)
            .seed(seed)
            .phase_config(PhaseConfig {
                training_steps: 30,
                evaluation_steps: 20,
                ..Default::default()
            });
        let mut claimed = 0usize;
        for (strategy, count, param_kind) in &picks {
            // Keep at least two honest peers so the spec stays valid.
            if claimed + count + 2 > population {
                continue;
            }
            claimed += count;
            // Parameters are strategy-specific (probability, period, rejoin
            // delay), so draw from each strategy's valid pool.
            let name = STRATEGIES[*strategy as usize];
            let parameter = match (name, param_kind) {
                (_, 0) => 0.0,
                ("naive-whitewash", 1) => 0.05,
                ("naive-whitewash", _) => 0.25,
                ("oscillating-freerider", 1) => 24.0,
                ("oscillating-freerider", _) => 80.0,
                (_, 1) => 3.0,
                (_, _) => 40.0,
            };
            builder = builder.adversary(AdversarySpec::new(name, *count).with_parameter(parameter));
        }
        let spec = builder.build().expect("generated adversary specs are valid");
        let text = spec.to_text();
        let parsed = ScenarioSpec::parse(&text).expect("rendered specs parse back");
        prop_assert_eq!(&parsed, &spec, "adversary round trip drifted");
        let expects_phase = !spec.config().adversaries.is_empty();
        prop_assert_eq!(
            parsed.phases().iter().any(|p| p == "adversary"),
            expects_phase,
            "adversary phase presence must follow the parsed unit list"
        );
        // Round-tripped specs must also *build* (names resolve, parameters
        // validate against the standard registry).
        Simulation::from_spec(&parsed).expect("parsed adversary specs build");
    }
}

/// Adversary-enabled specs must produce bit-identical reports whether the
/// runner executes them sequentially or on parallel workers.
#[test]
fn adversary_runs_parallel_equals_sequential() {
    let specs: Vec<ScenarioSpec> = (0..4)
        .map(|i| {
            ScenarioSpec::builder()
                .label(format!("attack/{i}"))
                .population(24)
                .initial_articles(12)
                .mix(BehaviorMix::new(0.5, 0.3, 0.2))
                .phase_config(PhaseConfig {
                    training_steps: 80,
                    evaluation_steps: 40,
                    ..Default::default()
                })
                .seed(0xA11CE + i)
                .adversary(AdversarySpec::new(STRATEGIES[i as usize % 5], 3))
                .adversary(AdversarySpec::new("collusion-ring", 2))
                .build()
                .expect("attack specs are valid")
        })
        .collect();
    let parallel = ScenarioRunner::default().run_specs(specs.clone()).unwrap();
    let sequential = ScenarioRunner::sequential().run_specs(specs).unwrap();
    assert_eq!(parallel, sequential);
}

/// The acceptance comparison: at a comparable reset volume the adaptive
/// whitewasher retains more reputation than the naive stochastic
/// whitewasher, because it resets *only* when punishment is about to bite
/// (and therefore never sits out a punishment's reputation reset and
/// rights lockout).
#[test]
fn adaptive_whitewash_beats_naive_stochastic_whitewash() {
    let run = |strategy: &str, parameter: f64| {
        let spec = ScenarioSpec::builder()
            .label(format!("duel/{strategy}"))
            .population(40)
            .initial_articles(20)
            .mix(BehaviorMix::new(0.3, 0.5, 0.2))
            .phase_config(PhaseConfig {
                training_steps: 600,
                evaluation_steps: 400,
                ..Default::default()
            })
            .seed(0xD0E1)
            .adversary(AdversarySpec::new(strategy, 5).with_parameter(parameter))
            .build()
            .expect("duel specs are valid");
        let mut sim = Simulation::from_spec(&spec).expect("resolves");
        sim.add_observer(AttackMetricsObserver::new());
        sim.run();
        let stats = *sim.world().adversaries.units()[0].stats();
        let observer: &AttackMetricsObserver = sim.observer(0).expect("attached");
        let metrics = observer.metrics()[0].clone();
        (stats, metrics)
    };

    let (adaptive_stats, adaptive) = run("adaptive-whitewash", 0.0);
    let (naive_stats, naive) = run("naive-whitewash", 0.02);

    assert!(
        adaptive_stats.resets > 0,
        "adaptive must actually whitewash"
    );
    assert!(naive_stats.resets > 0, "naive must actually whitewash");
    assert!(
        adaptive.mean_reputation_retained() > naive.mean_reputation_retained(),
        "adaptive timing must retain more reputation: {} vs {}",
        adaptive.mean_reputation_retained(),
        naive.mean_reputation_retained()
    );
    assert!(
        adaptive.edit_revocations < naive.edit_revocations,
        "adaptive must dodge the malicious-editor punishment the naive whitewasher suffers: \
         {} vs {}",
        adaptive.edit_revocations,
        naive.edit_revocations
    );
}

/// The timed-whitewash path: with a re-entry delay the adaptive strategy
/// departs after each whitewash and returns through the
/// [`ReentrySchedule`](collabsim_workspace::netsim::churn::ReentrySchedule).
#[test]
fn timed_whitewash_departs_and_reenters_on_schedule() {
    let spec = ScenarioSpec::builder()
        .population(24)
        .initial_articles(12)
        .mix(BehaviorMix::new(0.3, 0.5, 0.2))
        .phase_config(PhaseConfig {
            training_steps: 400,
            evaluation_steps: 200,
            ..Default::default()
        })
        .seed(0x71E0)
        .adversary(AdversarySpec::new("adaptive-whitewash", 3).with_parameter(4.0))
        .build()
        .unwrap();
    let mut sim = Simulation::from_spec(&spec).unwrap();
    sim.run();
    let stats = *sim.world().adversaries.units()[0].stats();
    assert!(stats.resets > 0, "whitewashes happen");
    assert!(stats.departures > 0, "each whitewash departs");
    assert!(stats.rejoins > 0, "scheduled re-entries fire");
    // Everyone is back online at the end or still within a 4-step cooldown.
    assert!(sim.world().peers.online().count() >= sim.world().population() - 3);
}

/// Collusion must measurably help: the same vandal behaviour gets more
/// destructive edits accepted *with* ring cross-voting than without it.
/// The lone-wolf control is a custom strategy registered through the
/// [`AdversaryRegistry`] — which also exercises the documented
/// custom-strategy path end to end (register + spec + run, zero engine
/// edits).
#[test]
fn collusion_ring_amplifies_destructive_acceptance() {
    use collabsim_workspace::collabsim::adversary::{
        AdversaryAction, AdversaryRegistry, AdversaryStrategy,
    };
    use collabsim_workspace::collabsim::pipeline::PhaseRegistry;
    use collabsim_workspace::collabsim::{CollabAction, EditBehavior, ShareLevel, WorldView};
    use collabsim_workspace::netsim::peer::PeerId;

    /// The ring's exact forced action, but *without* any voting (the
    /// [`Silent`](collabsim_workspace::collabsim::adversary::VotePolicy)
    /// policy) — isolating the cross-vote override as the only difference.
    struct LoneVandal;
    impl AdversaryStrategy for LoneVandal {
        fn name(&self) -> &'static str {
            "lone-vandal"
        }
        fn vote_policy(&self) -> collabsim_workspace::collabsim::adversary::VotePolicy {
            collabsim_workspace::collabsim::adversary::VotePolicy::Silent
        }
        fn on_step(
            &mut self,
            peers: &[PeerId],
            view: WorldView<'_>,
            _rng: &mut rand::rngs::StdRng,
            actions: &mut Vec<AdversaryAction>,
        ) {
            for &peer in peers {
                if view.world().peers.peer(peer).online {
                    actions.push(AdversaryAction::Act {
                        peer,
                        action: CollabAction {
                            bandwidth: ShareLevel::Full,
                            articles: ShareLevel::Full,
                            edit: EditBehavior::Destructive,
                        },
                    });
                }
            }
        }
    }

    let mut registry = AdversaryRegistry::standard();
    registry.register("lone-vandal", |_, _| Ok(Box::new(LoneVandal)));

    let run = |strategy: &str, registry: &AdversaryRegistry| {
        let spec = ScenarioSpec::builder()
            .population(24)
            .initial_articles(12)
            .mix(BehaviorMix::new(0.3, 0.4, 0.3))
            .phase_config(PhaseConfig {
                training_steps: 500,
                evaluation_steps: 500,
                ..Default::default()
            })
            .seed(0x0516)
            .adversary(AdversarySpec::new(strategy, 6))
            .build()
            .unwrap();
        let mut sim =
            Simulation::from_spec_with_registries(&spec, &PhaseRegistry::standard(), registry)
                .unwrap();
        sim.add_observer(AttackMetricsObserver::new());
        sim.run();
        let observer: &AttackMetricsObserver = sim.observer(0).unwrap();
        observer.metrics()[0].clone()
    };

    let ring = run("collusion-ring", &registry);
    let lone = run("lone-vandal", &registry);
    assert!(
        ring.destructive_accepted > lone.destructive_accepted,
        "cross-voting must amplify destructive acceptance: ring {} vs lone {}",
        ring.destructive_accepted,
        lone.destructive_accepted
    );
    assert!(
        ring.edit_revocations < lone.edit_revocations,
        "the ring's accepted edits must shield it from the malicious-editor punishment \
         the voteless vandal accumulates: ring {} vs lone {}",
        ring.edit_revocations,
        lone.edit_revocations
    );
}

/// An *untrained* frozen learner (α = 0, all-zero Q-table) must be
/// perfectly inert: greedy ties break towards action 0 — "lurk", which
/// emits nothing — and a frozen policy draws nothing from the adversary
/// RNG stream, so attaching the unit to the golden configuration cannot
/// move the pinned report by a single bit.
#[test]
fn untrained_frozen_learner_leaves_the_golden_report_untouched() {
    let golden = SimulationConfig {
        population: 20,
        initial_articles: 10,
        phases: PhaseConfig {
            training_steps: 120,
            evaluation_steps: 80,
            ..Default::default()
        },
        ..Default::default()
    }
    .with_mix(BehaviorMix::new(0.5, 0.25, 0.25))
    .with_incentive(IncentiveScheme::ReputationBased)
    .with_seed(0xC0FFEE);

    let baseline = format!("{:?}", Simulation::new(golden.clone()).run());

    let mut with_learner = golden;
    with_learner.adversaries = vec![AdversarySpec::new("learning", 3).with_parameter(0.0)];
    let spec = ScenarioSpec::from_config(with_learner).expect("golden + learner validates");
    let report = format!(
        "{:?}",
        Simulation::from_spec(&spec).expect("resolves").run()
    );
    assert_eq!(
        report, baseline,
        "an untrained frozen learner must leave the golden report untouched"
    );
}

/// A *trained* frozen learner replays bit-identically regardless of the
/// intra-step worker count: train once, inject the Q-table into an α = 0
/// evaluation fork, and the greedy replay at 1, 3 and 4 intra-step
/// threads must produce byte-identical reports (the learning adversary
/// lives on the deterministic adversary RNG stream and a frozen policy
/// draws from it not at all).
#[test]
fn frozen_learner_replay_is_bit_identical_across_thread_counts() {
    let base_config = SimulationConfig {
        population: 28,
        initial_articles: 14,
        phases: PhaseConfig {
            training_steps: 90,
            evaluation_steps: 60,
            ..Default::default()
        },
        ..Default::default()
    }
    .with_mix(BehaviorMix::new(0.5, 0.3, 0.2))
    .with_incentive(IncentiveScheme::ReputationBased)
    .with_seed(0x1EA21);

    // Equilibrate the adversary-free base and train a learner from it.
    let base = ScenarioSpec::from_config(base_config.clone()).expect("base validates");
    let mut sim = Simulation::from_spec(&base).expect("base resolves");
    sim.run_training();
    let checkpoint = sim.snapshot(&base);

    let mut train_config = base_config.clone();
    train_config.adversaries = vec![AdversarySpec::new("learning", 4).with_parameter(0.25)];
    let train_spec = ScenarioSpec::from_config(train_config)
        .expect("training config validates")
        .with_label("threads/train");
    let mut trainer =
        Simulation::resume_from(&checkpoint.with_spec(&train_spec)).expect("fork resumes");
    trainer.finish();
    let policies = trainer.world().adversaries.export_policies();
    let lead = policies[0].as_ref().expect("learner exports a policy");
    assert!(lead.updates > 0, "training must fill the Q-table");

    let mut reports = Vec::new();
    for threads in [1usize, 3, 4] {
        let mut frozen_config = base_config.clone().with_intra_step_threads(threads);
        frozen_config.adversaries = vec![AdversarySpec::new("learning", 4).with_parameter(0.0)];
        let frozen_spec = ScenarioSpec::from_config(frozen_config)
            .expect("frozen config validates")
            .with_label("threads/frozen");
        let mut fork = checkpoint.with_spec(&frozen_spec);
        fork.state.adversary_policies = policies.clone();
        let mut replay = Simulation::resume_from(&fork).expect("frozen fork resumes");
        reports.push(format!("{:?}", replay.finish()));
    }
    assert_eq!(
        reports[0], reports[1],
        "1 vs 3 intra-step threads must match"
    );
    assert_eq!(
        reports[0], reports[2],
        "1 vs 4 intra-step threads must match"
    );
}
