//! Property and integration tests of the declarative scenario API:
//!
//! * **Round trip** — building a spec, rendering it to text, parsing it
//!   back and building again produces the same spec, the same pipeline
//!   (phase names) and the same simulation report, for arbitrary spec
//!   parameters.
//! * **Registry order** — a custom user-registered phase runs at exactly
//!   the position the spec's phase list declares, with zero engine edits.
//! * **Compatibility** — `Simulation::from_spec` on a default-phase spec
//!   is bit-identical to `Simulation::new` on the same configuration.

use collabsim_workspace::collabsim::config::PhaseConfig;
use collabsim_workspace::collabsim::observer::{StepObserver, WorldView};
use collabsim_workspace::collabsim::pipeline::{PhaseRegistry, StepContext, StepPhase};
use collabsim_workspace::collabsim::spec::{ScenarioSpec, SpecError};
use collabsim_workspace::collabsim::{
    BehaviorMix, IncentiveScheme, ScenarioRunner, SimWorld, Simulation, SimulationConfig,
};
use collabsim_workspace::netsim::churn::ChurnModel;
use proptest::prelude::*;

/// A small-but-arbitrary spec from random draws: population, mix, scheme,
/// seed, churn and propagation knobs all vary; phases stay short so the
/// report-equality property runs in test time.
fn spec_from(
    population: usize,
    mix_raw: (u32, u32, u32),
    scheme_kind: u32,
    seed: u64,
    churn_raw: (u32, u32, u32),
    edit_pct: u32,
) -> ScenarioSpec {
    let (r, a, i) = mix_raw;
    let total = (r + a + i).max(1) as f64;
    let mix = BehaviorMix::new(
        f64::from(r) / total,
        f64::from(a) / total,
        (total - f64::from(r) - f64::from(a)) / total,
    );
    let scheme = IncentiveScheme::ALL[scheme_kind as usize % 3];
    let churn = ChurnModel {
        join_probability: f64::from(churn_raw.0 % 20) / 100.0,
        leave_probability: f64::from(churn_raw.1 % 5) / 1000.0,
        whitewash_probability: f64::from(churn_raw.2 % 5) / 1000.0,
    };
    ScenarioSpec::builder()
        .label(format!("prop/{seed}"))
        .population(population)
        .mix(mix)
        .incentive(scheme)
        .seed(seed)
        .phase_config(PhaseConfig {
            training_steps: 40,
            evaluation_steps: 20,
            ..Default::default()
        })
        .initial_articles(population / 2 + 2)
        .churn(churn)
        .configure(|c| c.edit_probability = f64::from(edit_pct % 101) / 100.0)
        .build()
        .expect("generated specs are valid")
}

proptest! {
    /// build → serialize → parse → build: the parsed spec is equal, its
    /// pipeline has the same phases, and running both specs produces the
    /// same report.
    #[test]
    fn text_round_trip_preserves_spec_pipeline_and_report(
        population in 6usize..24,
        mix_raw in (0u32..5, 0u32..5, 1u32..5),
        scheme_kind in 0u32..3,
        seed in 0u64..1_000_000,
        churn_raw in (0u32..20, 0u32..5, 0u32..5),
        edit_pct in 0u32..101,
    ) {
        let spec = spec_from(population, mix_raw, scheme_kind, seed, churn_raw, edit_pct);
        let text = spec.to_text();
        let parsed = ScenarioSpec::parse(&text).expect("rendered specs parse back");
        prop_assert_eq!(&parsed, &spec, "parsed spec drifted");

        let pipeline = spec.build_pipeline().expect("standard phases resolve");
        let reparsed_pipeline = parsed.build_pipeline().expect("standard phases resolve");
        prop_assert_eq!(pipeline.phase_names(), reparsed_pipeline.phase_names());

        let report = Simulation::from_spec(&spec).expect("resolves").run();
        let reparsed_report = Simulation::from_spec(&parsed).expect("resolves").run();
        prop_assert_eq!(report, reparsed_report, "round-tripped spec changed the trajectory");
    }
}

#[test]
fn from_spec_matches_new_on_default_phases() {
    let config = SimulationConfig {
        population: 20,
        initial_articles: 10,
        phases: PhaseConfig {
            training_steps: 120,
            evaluation_steps: 80,
            ..Default::default()
        },
        ..Default::default()
    }
    .with_mix(BehaviorMix::new(0.5, 0.25, 0.25))
    .with_seed(0xBEEF);
    let via_new = Simulation::new(config.clone()).run();
    let spec = ScenarioSpec::from_config(config).unwrap();
    let via_spec = Simulation::from_spec(&spec).unwrap().run();
    assert_eq!(via_new, via_spec);
}

#[test]
fn presets_are_thin_wrappers_over_the_config_presets() {
    assert_eq!(
        ScenarioSpec::paper_figure3_with_incentive().config(),
        &SimulationConfig::paper_figure3_with_incentive()
    );
    assert_eq!(
        ScenarioSpec::paper_figure3_without_incentive().config(),
        &SimulationConfig::paper_figure3_without_incentive()
    );
    assert_eq!(
        ScenarioSpec::large_population(10_000).config(),
        &SimulationConfig::large_population(10_000)
    );
}

/// A phase that stamps its position in the step's execution order into the
/// world (abusing `propagation_runs` as a cheap visible counter), plus an
/// observer asserting the declared order, together proving that a custom
/// scenario needs zero engine edits: register + declare + run.
struct StampPhase;

impl StepPhase for StampPhase {
    fn name(&self) -> &'static str {
        "stamp"
    }
    fn execute(&self, world: &mut SimWorld, _ctx: &mut StepContext) {
        world.propagation_runs += 1;
    }
}

#[derive(Default)]
struct OrderObserver {
    per_step: Vec<Vec<String>>,
    current: Vec<String>,
}

impl StepObserver for OrderObserver {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn on_phase(
        &mut self,
        phase: &str,
        _elapsed: std::time::Duration,
        _world: WorldView<'_>,
        _ctx: &StepContext,
    ) {
        self.current.push(phase.to_string());
    }
    fn on_step_end(&mut self, _world: WorldView<'_>, _ctx: &StepContext) {
        self.per_step.push(std::mem::take(&mut self.current));
    }
}

#[test]
fn user_registered_phase_runs_in_declared_order() {
    let mut registry = PhaseRegistry::standard();
    registry.register("stamp", |_| Box::new(StampPhase));

    // Declare the custom phase in the middle of the standard order.
    let spec = ScenarioSpec::builder()
        .population(10)
        .initial_articles(5)
        .phase_config(PhaseConfig {
            training_steps: 6,
            evaluation_steps: 4,
            ..Default::default()
        })
        .phase_order([
            "selection",
            "sharing",
            "stamp",
            "download",
            "edit-vote",
            "utility",
            "learning",
        ])
        .build()
        .unwrap();

    let mut sim = Simulation::from_spec_with_registry(&spec, &registry).unwrap();
    sim.add_observer(OrderObserver::default());
    sim.run();

    assert_eq!(
        sim.world().propagation_runs,
        10,
        "stamp phase executed once per step"
    );
    let observer: &OrderObserver = sim.observer(0).unwrap();
    assert_eq!(observer.per_step.len(), 10);
    for step in &observer.per_step {
        assert_eq!(
            step,
            &[
                "selection",
                "sharing",
                "stamp",
                "download",
                "edit-vote",
                "utility",
                "learning"
            ],
            "phases must run in the declared order"
        );
    }

    // The same spec fails against a registry without the custom phase —
    // with a typed error, before anything runs.
    let Err(err) = Simulation::from_spec(&spec) else {
        panic!("unregistered phase must not resolve");
    };
    assert_eq!(
        err,
        SpecError::UnknownPhase {
            name: "stamp".to_string()
        }
    );
}

#[test]
fn runner_executes_custom_registry_specs_in_parallel() {
    let mut registry = PhaseRegistry::standard();
    registry.register("stamp", |_| Box::new(StampPhase));
    let base = ScenarioSpec::builder()
        .population(10)
        .initial_articles(5)
        .phase_config(PhaseConfig {
            training_steps: 30,
            evaluation_steps: 20,
            ..Default::default()
        })
        .push_phase("stamp");
    let specs: Vec<ScenarioSpec> = (0..4)
        .map(|i| {
            base.clone()
                .label(format!("stamp/{i}"))
                .seed(1000 + i)
                .build()
                .unwrap()
        })
        .collect();
    let parallel = ScenarioRunner::default()
        .run_specs_with_registry(specs.clone(), &registry)
        .unwrap();
    let sequential = ScenarioRunner::sequential()
        .run_specs_with_registry(specs.clone(), &registry)
        .unwrap();
    assert_eq!(parallel, sequential);
    assert_eq!(parallel.len(), 4);
    assert_eq!(parallel[0].label, "stamp/0");

    // Unknown phases fail up front through the runner too.
    let err = ScenarioRunner::default().run_specs(specs).unwrap_err();
    assert!(matches!(err, SpecError::UnknownPhase { .. }));
}
