//! Property-based integration tests over the incentive scheme's invariants,
//! spanning the reputation, netsim, rl and gametheory crates.

use collabsim_workspace::collabsim::action::CollabAction;
use collabsim_workspace::gametheory::behavior::{BehaviorMix, BehaviorType};
use collabsim_workspace::netsim::bandwidth::{
    AllocationPolicy, BandwidthAllocator, DownloadRequest,
};
use collabsim_workspace::netsim::peer::PeerId;
use collabsim_workspace::reputation::function::{LogisticReputation, ReputationFunction};
use collabsim_workspace::reputation::service::ServiceDifferentiation;
use collabsim_workspace::rl::boltzmann::boltzmann_distribution;
use collabsim_workspace::rl::qlearning::{q_value_bound, QLearningAgent, QLearningParams};
use collabsim_workspace::rl::space::{ActionSpace, StateSpace};
use proptest::prelude::*;

proptest! {
    /// The logistic reputation function always lands in [R_min, 1] and is
    /// monotone, for any admissible (g, β) and contribution value.
    #[test]
    fn reputation_function_is_bounded_and_monotone(
        g in 0.5f64..100.0,
        beta in 0.01f64..2.0,
        c in 0.0f64..200.0,
        delta in 0.0f64..50.0,
    ) {
        let f = LogisticReputation::new(g, beta);
        let r = f.reputation(c);
        prop_assert!(r >= f.minimum() - 1e-12);
        prop_assert!(r <= 1.0 + 1e-12);
        prop_assert!(f.reputation(c + delta) >= r - 1e-12);
    }

    /// Bandwidth shares are a probability distribution over the downloaders
    /// for every allocation policy and any set of reputations/histories.
    #[test]
    fn bandwidth_shares_always_form_a_distribution(
        reputations in proptest::collection::vec(0.0f64..1.0, 1..12),
        history in proptest::collection::vec(0.0f64..10.0, 1..12),
    ) {
        let n = reputations.len().min(history.len());
        let requests: Vec<DownloadRequest> = (0..n)
            .map(|i| DownloadRequest {
                downloader: PeerId(i as u32),
                sharing_reputation: reputations[i],
                download_capacity: 1.0,
                uploaded_to_source: history[i],
            })
            .collect();
        for policy in [
            AllocationPolicy::EqualSplit,
            AllocationPolicy::WeightedByReputation,
            AllocationPolicy::TitForTat,
        ] {
            let shares = BandwidthAllocator::new(policy).shares(&requests);
            let sum: f64 = shares.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9, "{policy:?}: sum {sum}");
            prop_assert!(shares.iter().all(|&s| s >= 0.0));
        }
    }

    /// Allocated bandwidth never exceeds what the source offered nor any
    /// downloader's capacity.
    #[test]
    fn allocation_respects_offer_and_capacities(
        offered in 0.0f64..1.0,
        capacities in proptest::collection::vec(0.01f64..1.0, 1..10),
        reputations in proptest::collection::vec(0.0f64..1.0, 1..10),
    ) {
        let n = capacities.len().min(reputations.len());
        let requests: Vec<DownloadRequest> = (0..n)
            .map(|i| DownloadRequest {
                downloader: PeerId(i as u32),
                sharing_reputation: reputations[i],
                download_capacity: capacities[i],
                uploaded_to_source: 0.0,
            })
            .collect();
        let allocations =
            BandwidthAllocator::new(AllocationPolicy::WeightedByReputation).allocate(offered, &requests);
        let total: f64 = allocations.iter().map(|a| a.bandwidth).sum();
        prop_assert!(total <= offered + 1e-9);
        for (allocation, request) in allocations.iter().zip(requests.iter()) {
            prop_assert!(allocation.bandwidth <= request.download_capacity + 1e-9);
        }
    }

    /// The Boltzmann distribution is a probability distribution for any
    /// finite Q-values and positive temperature, and never prefers a lower
    /// Q-value over a higher one.
    #[test]
    fn boltzmann_is_a_monotone_distribution(
        values in proptest::collection::vec(-50.0f64..50.0, 2..27),
        t in 0.05f64..2000.0,
    ) {
        let p = boltzmann_distribution(&values, t);
        let sum: f64 = p.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        for i in 0..values.len() {
            for j in 0..values.len() {
                if values[i] > values[j] {
                    prop_assert!(p[i] >= p[j] - 1e-12);
                }
            }
        }
    }

    /// Q-values stay within the theoretical bound r_max / (1 − γ) for
    /// arbitrary bounded-reward trajectories.
    #[test]
    fn q_learning_respects_value_bound(
        seedlike in proptest::collection::vec((0usize..6, 0usize..4, -1.0f64..1.0, 0usize..6), 1..300),
        alpha in 0.01f64..1.0,
        gamma in 0.0f64..0.95,
    ) {
        let params = QLearningParams { learning_rate: alpha, discount: gamma, initial_q: 0.0 };
        let mut agent = QLearningAgent::new(StateSpace::new(6), ActionSpace::new(4), params);
        for (state, action, reward, next) in seedlike {
            agent.update(state, action, reward, next);
        }
        prop_assert!(agent.max_abs_q() <= q_value_bound(1.0, gamma) + 1e-9);
        prop_assert!(agent.table().is_finite());
    }

    /// Service differentiation's required majority is monotone decreasing in
    /// the editor's reputation and stays a valid fraction.
    #[test]
    fn required_majority_is_monotone(r1 in 0.0f64..1.0, r2 in 0.0f64..1.0) {
        let service = ServiceDifferentiation::paper_defaults();
        let (lo, hi) = if r1 <= r2 { (r1, r2) } else { (r2, r1) };
        let m_lo = service.required_majority(lo);
        let m_hi = service.required_majority(hi);
        prop_assert!(m_hi <= m_lo + 1e-12);
        prop_assert!((0.0..=1.0).contains(&m_lo));
        prop_assert!((0.0..=1.0).contains(&m_hi));
    }

    /// Behaviour-mix assignment always produces exactly the requested
    /// population and matches the fractions within rounding.
    #[test]
    fn behavior_mix_assignment_is_exact(
        rational in 0.0f64..1.0,
        altruistic_weight in 0.0f64..1.0,
        population in 1usize..300,
    ) {
        let altruistic = (1.0 - rational) * altruistic_weight;
        let irrational = 1.0 - rational - altruistic;
        let mix = BehaviorMix::new(rational, altruistic, irrational.clamp(0.0, 1.0));
        let assigned = mix.assign(population);
        prop_assert_eq!(assigned.len(), population);
        for behavior in BehaviorType::ALL {
            let count = assigned.iter().filter(|&&b| b == behavior).count() as f64;
            let expected = mix.fraction(behavior) * population as f64;
            prop_assert!((count - expected).abs() <= 1.0 + 1e-9);
        }
    }

    /// Collab actions round-trip through their flat index for every index.
    #[test]
    fn action_index_roundtrip(index in 0usize..27) {
        let action = CollabAction::from_index(index);
        prop_assert_eq!(action.to_index(), index);
    }
}
