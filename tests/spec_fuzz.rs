//! Scenario-spec fuzzer: random `ScenarioSpec`s run under the invariant
//! observers of `collabsim::invariants`.
//!
//! Each case samples a full scenario (population × behaviour mix × churn ×
//! adversary × network model × incentive scheme), builds it through the
//! validating [`ScenarioSpec`] builder path, runs it with all four
//! invariant observers attached and fails if any observer records a
//! violation. The offline `proptest` stand-in has no shrinking, so a
//! hand-rolled greedy shrinker reduces a failing scenario (fewer peers,
//! fewer steps, no churn/adversary/faults, simplest mix) while the
//! violation reproduces, and the panic message carries the *minimal* spec
//! text for replay.
//!
//! Case count follows `PROPTEST_CASES` (default 64), matching the stub.
//!
//! The snapshot subsystem rides the same generator: a mid-run checkpoint
//! hop (checkpoint → resume → finish) must reproduce the uninterrupted
//! report byte-for-byte on arbitrary scenarios, and both [`RunStore`]
//! backends must round-trip arbitrary mid-run snapshots bitwise.

use collabsim_workspace::collabsim::invariants::{
    ActiveSetObserver, ArenaBoundObserver, ConservationObserver, ReputationBoundsObserver,
};
use collabsim_workspace::collabsim::spec::ScenarioSpec;
use collabsim_workspace::collabsim::{
    AdversarySpec, BehaviorMix, DirStore, IncentiveScheme, MemStore, PhaseConfig, RunStore,
    Simulation, Snapshot, StepContext, StepObserver, WorldView,
};
use collabsim_workspace::netsim::churn::ChurnModel;
use collabsim_workspace::netsim::fault::LinkModel;
use proptest::{case_count, seed_for, Strategy};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One sampled scenario, kept as plain parameters so the shrinker can
/// produce smaller neighbours without re-parsing spec text.
#[derive(Debug, Clone, Copy, PartialEq)]
struct FuzzParams {
    population: usize,
    /// Index into [`MIXES`].
    mix: usize,
    /// Index into [`IncentiveScheme::ALL`].
    incentive: usize,
    training_steps: u64,
    evaluation_steps: u64,
    churn_leave: f64,
    churn_join: f64,
    churn_whitewash: f64,
    /// 0 = no adversary, 1.. = index + 1 into [`ADVERSARIES`].
    adversary: usize,
    /// 0 = ideal, 1.. = one of the four non-ideal link models.
    network: usize,
    loss: f64,
    latency: u64,
    seed: u64,
}

/// Exact binary fractions, so every mix sums to 1.0 with no float slop.
const MIXES: [(f64, f64, f64); 5] = [
    (1.0, 0.0, 0.0),
    (0.5, 0.5, 0.0),
    (0.5, 0.25, 0.25),
    (0.75, 0.125, 0.125),
    (0.25, 0.5, 0.25),
];

const ADVERSARIES: [&str; 5] = [
    "collusion-ring",
    "naive-whitewash",
    "adaptive-whitewash",
    "oscillating-freerider",
    "learning",
];

impl FuzzParams {
    fn network_model(&self) -> LinkModel {
        match self.network {
            0 => LinkModel::Ideal,
            1 => LinkModel::UniformLatency {
                min: 1,
                max: 1 + self.latency,
            },
            2 => LinkModel::LognormalLatency {
                mu: 0.5 + self.loss,
                sigma: 0.6,
            },
            3 => LinkModel::IidLoss { loss: self.loss },
            _ => LinkModel::TwoClusters {
                loss: self.loss,
                penalty: 1 + self.latency,
            },
        }
    }

    fn spec(&self) -> ScenarioSpec {
        let (r, a, i) = MIXES[self.mix % MIXES.len()];
        let mut builder = ScenarioSpec::builder()
            .label(format!("fuzz-{}", self.seed))
            .population(self.population)
            .mix(BehaviorMix::new(r, a, i))
            .incentive(IncentiveScheme::ALL[self.incentive % IncentiveScheme::ALL.len()])
            .phase_config(PhaseConfig {
                training_steps: self.training_steps,
                evaluation_steps: self.evaluation_steps,
                ..Default::default()
            })
            .initial_articles(self.population / 2)
            .churn(ChurnModel {
                join_probability: self.churn_join,
                leave_probability: self.churn_leave,
                whitewash_probability: self.churn_whitewash,
            })
            .network(self.network_model())
            .seed(self.seed);
        if self.adversary > 0 {
            let strategy = ADVERSARIES[(self.adversary - 1) % ADVERSARIES.len()];
            // The learning adversary's parameter is its learning rate —
            // give it a non-zero α so the fuzz actually exercises
            // Q-updates and Boltzmann draws, not the inert frozen path.
            let unit = if strategy == "learning" {
                AdversarySpec::new(strategy, 2).with_parameter(0.3)
            } else {
                AdversarySpec::new(strategy, 2)
            };
            builder = builder.adversary(unit);
        }
        builder
            .build()
            .unwrap_or_else(|e| panic!("generated params must validate: {e} ({self:?})"))
    }

    /// Candidate smaller neighbours, most aggressive first.
    fn shrink_candidates(&self) -> Vec<FuzzParams> {
        let mut out = Vec::new();
        if self.population > 6 {
            out.push(FuzzParams {
                population: (self.population / 2).max(6),
                ..*self
            });
        }
        if self.training_steps > 10 {
            out.push(FuzzParams {
                training_steps: (self.training_steps / 2).max(10),
                ..*self
            });
        }
        if self.evaluation_steps > 10 {
            out.push(FuzzParams {
                evaluation_steps: (self.evaluation_steps / 2).max(10),
                ..*self
            });
        }
        if self.churn_leave > 0.0 || self.churn_join > 0.0 || self.churn_whitewash > 0.0 {
            out.push(FuzzParams {
                churn_leave: 0.0,
                churn_join: 0.0,
                churn_whitewash: 0.0,
                ..*self
            });
        }
        if self.adversary > 0 {
            out.push(FuzzParams {
                adversary: 0,
                ..*self
            });
        }
        if self.network > 0 {
            out.push(FuzzParams {
                network: 0,
                ..*self
            });
        }
        if self.mix != 0 {
            out.push(FuzzParams { mix: 0, ..*self });
        }
        if self.incentive != 0 {
            out.push(FuzzParams {
                incentive: 0,
                ..*self
            });
        }
        out
    }
}

/// Samples one scenario from the stub's range strategies.
fn sample_params(rng: &mut StdRng) -> FuzzParams {
    // Tuple strategies cap at five elements, so the thirteen dimensions
    // sample as three tuples.
    let (population, mix, incentive, training_steps, evaluation_steps) =
        (6usize..40, 0usize..5, 0usize..3, 10u64..40, 10u64..30).sample(rng);
    let (churn_leave, churn_join, churn_whitewash, adversary, network) = (
        0.0f64..0.03,
        0.0f64..0.03,
        0.0f64..0.01,
        0usize..5,
        0usize..5,
    )
        .sample(rng);
    let (loss, latency, seed) = (0.01f64..0.3, 1u64..6, 0u64..u64::MAX).sample(rng);
    FuzzParams {
        population,
        mix,
        incentive,
        training_steps,
        evaluation_steps,
        churn_leave,
        churn_join,
        churn_whitewash,
        adversary,
        network,
        loss,
        latency,
        seed,
    }
}

/// A deliberately broken invariant — "no peer's sharing reputation may
/// exceed `min_reputation`" — which every healthy run violates as soon as
/// any peer earns reputation. Used to prove the fuzzer + shrinker actually
/// catch and reduce a violation.
#[derive(Debug, Default)]
struct BrokenInvariantObserver {
    violations: Vec<String>,
}

impl StepObserver for BrokenInvariantObserver {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn on_step_end(&mut self, world: WorldView<'_>, _ctx: &StepContext) {
        if !self.violations.is_empty() {
            return;
        }
        let min = world.world().config.min_reputation;
        for peer in 0..world.population() {
            if world.sharing_reputation(peer) > min + 1e-6 {
                self.violations.push(format!(
                    "step {}: peer {peer} exceeds the (deliberately broken) bound",
                    world.now()
                ));
                return;
            }
        }
    }
}

/// Runs a scenario under the four invariant observers (plus, optionally,
/// the deliberately broken one) and returns every recorded violation.
fn violations(params: &FuzzParams, with_broken: bool) -> Vec<String> {
    let spec = params.spec();
    let mut sim = Simulation::from_spec(&spec).expect("validated spec builds");
    sim.add_observer(ReputationBoundsObserver::new());
    sim.add_observer(ConservationObserver::new());
    sim.add_observer(ArenaBoundObserver::new());
    sim.add_observer(ActiveSetObserver::new());
    if with_broken {
        sim.add_observer(BrokenInvariantObserver::default());
    }
    sim.run();
    let mut all = Vec::new();
    all.extend_from_slice(
        sim.observer::<ReputationBoundsObserver>(0)
            .expect("attached")
            .violations(),
    );
    all.extend_from_slice(
        sim.observer::<ConservationObserver>(1)
            .expect("attached")
            .violations(),
    );
    all.extend_from_slice(
        sim.observer::<ArenaBoundObserver>(2)
            .expect("attached")
            .violations(),
    );
    all.extend_from_slice(
        sim.observer::<ActiveSetObserver>(3)
            .expect("attached")
            .violations(),
    );
    if with_broken {
        all.extend_from_slice(
            &sim.observer::<BrokenInvariantObserver>(4)
                .expect("attached")
                .violations,
        );
    }
    all
}

/// Greedy shrink: repeatedly accept the first smaller neighbour that still
/// violates, until none does.
fn shrink(mut params: FuzzParams, with_broken: bool) -> FuzzParams {
    loop {
        let next = params
            .shrink_candidates()
            .into_iter()
            .find(|candidate| !violations(candidate, with_broken).is_empty());
        match next {
            Some(candidate) => params = candidate,
            None => return params,
        }
    }
}

#[test]
fn generated_scenarios_uphold_all_invariants() {
    let mut rng = StdRng::seed_from_u64(seed_for("generated_scenarios_uphold_all_invariants"));
    for case in 0..case_count() {
        let params = sample_params(&mut rng);
        let found = violations(&params, false);
        if !found.is_empty() {
            let minimal = shrink(params, false);
            panic!(
                "case {case}: invariant violation {found:?}\n\
                 minimal reproducing spec:\n{}",
                minimal.spec().to_text()
            );
        }
    }
}

/// Snapshot/restore invariant over fuzzed scenarios: a run that takes a
/// mid-run checkpoint hop — checkpoint to a store, throw the simulation
/// away, resume from a mid-run key and finish — must produce a report
/// byte-identical to the uninterrupted run, for arbitrary populations,
/// mixes, churn, adversaries and fault models. Capped below the full case
/// count because every case pays three runs.
#[test]
fn snapshot_hop_mid_run_preserves_the_report() {
    let mut rng = StdRng::seed_from_u64(seed_for("snapshot_hop_mid_run_preserves_the_report"));
    for case in 0..case_count().min(16) {
        let params = sample_params(&mut rng);
        let spec = params.spec();
        let straight = format!(
            "{:?}",
            Simulation::from_spec(&spec)
                .expect("validated spec builds")
                .run()
        );

        let every = (params.training_steps / 3).max(1);
        let mut store = MemStore::new();
        let mut sim = Simulation::from_spec(&spec).expect("validated spec builds");
        let (checkpointed, keys) = sim
            .run_with_checkpoints(&spec, every, &mut store)
            .expect("checkpointing succeeds");
        assert_eq!(
            format!("{checkpointed:?}"),
            straight,
            "case {case}: checkpointing perturbed the run\n{}",
            spec.to_text()
        );
        assert!(!keys.is_empty(), "case {case}: no checkpoints written");

        let hop_key = &keys[keys.len() / 2];
        let snapshot = store.get(hop_key).expect("stored checkpoint reads back");
        let mut resumed = Simulation::resume_from(&snapshot).expect("checkpoint resumes");
        assert_eq!(
            format!("{:?}", resumed.finish()),
            straight,
            "case {case}: resume from `{hop_key}` drifted\n{}",
            spec.to_text()
        );
    }
}

/// Learned Q-tables survive the snapshot codec bitwise: a mid-run
/// snapshot of a training learner re-encodes to identical bytes, the
/// decoded policy state equals the captured one exactly (f64 bit
/// patterns included), and a simulation restored from the decoded
/// snapshot exports the very same policies.
#[test]
fn learned_q_tables_round_trip_the_snapshot_codec() {
    let mut rng = StdRng::seed_from_u64(seed_for("learned_q_tables_round_trip_the_snapshot_codec"));
    for case in 0..case_count().min(16) {
        let (population, adversaries, steps, seed) =
            (10usize..32, 1usize..4, 8u64..40, 0u64..u64::MAX).sample(&mut rng);
        let alpha = (0.05f64..0.6).sample(&mut rng);
        let spec = ScenarioSpec::builder()
            .label(format!("qfuzz/{case}"))
            .population(population)
            .initial_articles(population / 2)
            .phase_config(PhaseConfig {
                training_steps: 60,
                evaluation_steps: 30,
                ..Default::default()
            })
            .seed(seed)
            .adversary(AdversarySpec::new("learning", adversaries).with_parameter(alpha))
            .build()
            .expect("qfuzz specs are valid");
        let mut sim = Simulation::from_spec(&spec).expect("learning spec resolves");
        // An arbitrary mid-run position, so trajectories are in flight.
        for _ in 0..steps {
            sim.step(spec.config().phases.training_temperature);
        }
        let snapshot = sim.snapshot(&spec);
        assert!(
            snapshot.state.adversary_policies[0].is_some(),
            "case {case}: the learning unit must export a policy"
        );
        let bytes = snapshot.encode();
        let decoded = Snapshot::decode(&bytes).expect("snapshot decodes");
        assert_eq!(
            decoded.encode(),
            bytes,
            "case {case}: re-encode is not bitwise"
        );
        assert_eq!(
            decoded.state.adversary_policies, snapshot.state.adversary_policies,
            "case {case}: decoded policy state drifted"
        );
        let resumed = Simulation::resume_from(&decoded).expect("decoded snapshot resumes");
        assert_eq!(
            resumed.world().adversaries.export_policies(),
            snapshot.state.adversary_policies,
            "case {case}: restore → export drifted"
        );
    }
}

/// Both [`RunStore`] backends must round-trip arbitrary mid-run snapshots
/// bitwise: the bytes read back decode to a snapshot that re-encodes to
/// exactly the bytes stored.
#[test]
fn run_stores_round_trip_arbitrary_snapshots_bitwise() {
    let dir = std::env::temp_dir().join(format!("collabsim-fuzz-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut rng = StdRng::seed_from_u64(seed_for(
        "run_stores_round_trip_arbitrary_snapshots_bitwise",
    ));
    let mut mem = MemStore::new();
    let mut disk = DirStore::open(&dir).expect("temp store opens");
    for case in 0..case_count().min(16) {
        let params = sample_params(&mut rng);
        let spec = params.spec();
        let mut sim = Simulation::from_spec(&spec).expect("validated spec builds");
        // An arbitrary mid-run position, not just a phase boundary.
        for _ in 0..(params.seed % params.training_steps).max(1) {
            sim.step(spec.config().phases.training_temperature);
        }
        let snapshot = sim.snapshot(&spec);
        let reference = snapshot.encode();
        for (name, store) in [
            ("MemStore", &mut mem as &mut dyn RunStore),
            ("DirStore", &mut disk as &mut dyn RunStore),
        ] {
            let key = store.put(&snapshot).expect("store accepts the snapshot");
            let fetched = store.get(&key).expect("stored snapshot reads back");
            assert_eq!(
                fetched.encode(),
                reference,
                "case {case}: {name} round-trip is not bitwise\n{}",
                spec.to_text()
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn broken_invariant_is_caught_and_shrunk() {
    let mut rng = StdRng::seed_from_u64(seed_for("broken_invariant_is_caught_and_shrunk"));
    // Find a case the broken invariant flags (the first healthy run where
    // anyone earns reputation — effectively immediately).
    let mut caught = None;
    for _ in 0..8 {
        let params = sample_params(&mut rng);
        if !violations(&params, true).is_empty() {
            caught = Some(params);
            break;
        }
    }
    let params = caught.expect("the broken invariant must trip within a few cases");
    let minimal = shrink(params, true);
    // The shrinker must strip every accident of the original sample: the
    // violation needs none of churn, adversaries, faults or a special mix.
    assert_eq!(minimal.churn_leave, 0.0);
    assert_eq!(minimal.churn_join, 0.0);
    assert_eq!(minimal.churn_whitewash, 0.0);
    assert_eq!(minimal.adversary, 0);
    assert_eq!(minimal.network, 0, "ideal network suffices to reproduce");
    assert_eq!(minimal.population, 6, "population shrinks to the floor");
    assert!(minimal.training_steps <= 10);
    assert!(minimal.evaluation_steps <= 10);
    // And the minimal spec still reproduces, i.e. it is a real counterexample.
    assert!(!violations(&minimal, true).is_empty());
}
