//! Property tests: the sharded ledger is observationally identical to the
//! dense ledger for arbitrary interleavings of sharing and editing
//! contributions — recorded inline, batched, or batch-applied in parallel.

use collabsim_workspace::reputation::contribution::{
    ContributionDelta, ContributionParams, EditingAction, SharingAction,
};
use collabsim_workspace::reputation::function::LogisticReputation;
use collabsim_workspace::reputation::ledger::{ReputationLedger, ReputationStore};
use collabsim_workspace::reputation::sharded::{DeltaBatch, ShardedLedger};
use proptest::prelude::*;
use std::sync::Arc;

fn dense(peers: usize) -> ReputationLedger {
    ReputationLedger::new(
        peers,
        ContributionParams::default(),
        Arc::new(LogisticReputation::paper(0.2)),
        Arc::new(LogisticReputation::paper(0.2)),
    )
}

fn sharded(peers: usize, shards: usize) -> ShardedLedger {
    ShardedLedger::new(
        peers,
        ContributionParams::default(),
        Arc::new(LogisticReputation::paper(0.2)),
        Arc::new(LogisticReputation::paper(0.2)),
        shards,
    )
}

/// Decodes one sampled op: which peer it hits, whether it is a sharing or
/// an editing contribution, and its magnitudes.
fn decode_op(
    op: (usize, u32, f64, f64),
    peers: usize,
) -> (usize, Option<SharingAction>, Option<EditingAction>) {
    let (peer_raw, kind, a, b) = op;
    let peer = peer_raw % peers;
    match kind % 4 {
        // Active sharing step.
        0 => (
            peer,
            Some(SharingAction {
                shared_articles: a * 100.0,
                shared_bandwidth: b,
            }),
            None,
        ),
        // Inactive sharing step (decay path).
        1 => (peer, Some(SharingAction::default()), None),
        // Active editing step.
        2 => (
            peer,
            None,
            Some(EditingAction {
                successful_votes: (a * 4.0) as u32,
                accepted_edits: (b * 3.0) as u32,
                attempted: true,
            }),
        ),
        // Inactive editing step (decay path).
        _ => (peer, None, Some(EditingAction::default())),
    }
}

/// Bitwise comparison of every observable reputation value.
fn assert_ledgers_identical(dense: &ReputationLedger, sharded: &ShardedLedger) {
    assert_eq!(ReputationStore::len(dense), sharded.len());
    for p in 0..sharded.len() {
        assert_eq!(
            dense.sharing_reputation(p).to_bits(),
            sharded.sharing_reputation(p).to_bits(),
            "sharing reputation of peer {p} diverged"
        );
        assert_eq!(
            dense.editing_reputation(p).to_bits(),
            sharded.editing_reputation(p).to_bits(),
            "editing reputation of peer {p} diverged"
        );
    }
}

proptest! {
    /// Inline recording through the common `ReputationStore` interface:
    /// the sharded ledger tracks the dense one exactly, op for op.
    #[test]
    fn inline_recording_matches_dense(
        peers in 1usize..40,
        shards in 1usize..9,
        ops in proptest::collection::vec((0usize..40, 0u32..4, 0.0f64..1.0, 0.0f64..1.0), 0..120),
    ) {
        let mut reference = dense(peers);
        let mut tested = sharded(peers, shards);
        for &op in &ops {
            let (peer, sharing, editing) = decode_op(op, peers);
            if let Some(action) = sharing {
                reference.record_sharing(peer, &action);
                tested.record_sharing(peer, &action);
            }
            if let Some(action) = editing {
                reference.record_editing(peer, &action);
                tested.record_editing(peer, &action);
            }
        }
        assert_ledgers_identical(&reference, &tested);
    }

    /// The collect-then-apply protocol: ops are grouped into arbitrary
    /// step batches, bucketed per shard, and applied both sequentially and
    /// with parallel workers — all three executions must agree bitwise
    /// with the dense ledger recording the same interleaving inline.
    #[test]
    fn batched_and_parallel_apply_match_dense(
        peers in 1usize..40,
        shards in 1usize..9,
        threads in 1usize..5,
        step_len in 1usize..16,
        ops in proptest::collection::vec((0usize..40, 0u32..4, 0.0f64..1.0, 0.0f64..1.0), 0..120),
    ) {
        let mut reference = dense(peers);
        let mut sequential = sharded(peers, shards);
        let mut parallel = sharded(peers, shards);
        let mut batch_sequential = DeltaBatch::for_ledger(&sequential);
        let mut batch_parallel = DeltaBatch::for_ledger(&parallel);
        for step in ops.chunks(step_len) {
            batch_sequential.clear();
            batch_parallel.clear();
            for &op in step {
                let (peer, sharing, editing) = decode_op(op, peers);
                if let Some(action) = sharing {
                    reference.record_sharing(peer, &action);
                    batch_sequential.push(ContributionDelta::sharing(peer, action));
                    batch_parallel.push(ContributionDelta::sharing(peer, action));
                }
                if let Some(action) = editing {
                    reference.record_editing(peer, &action);
                    batch_sequential.push(ContributionDelta::editing(peer, action));
                    batch_parallel.push(ContributionDelta::editing(peer, action));
                }
            }
            sequential.apply(&batch_sequential);
            parallel.apply_parallel(&batch_parallel, threads);
        }
        assert_ledgers_identical(&reference, &sequential);
        assert_ledgers_identical(&reference, &parallel);
    }
}
