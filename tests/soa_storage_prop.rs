//! Property tests pinning the struct-of-arrays hot state bitwise against
//! the per-peer reference structs, plus the active-set invariant:
//!
//! * **Agent storage** — [`AgentTable`] (rank-major flat Q storage) must
//!   reproduce a `Vec<CollabAgent>` exactly, bit for bit, over random
//!   traces of choices, Q-updates, offline gaps and adversary-forced
//!   skips. Both sides share one RNG stream (only the reference agents
//!   draw), so any divergence is a storage bug, not sampling noise.
//! * **Shard splitting** — learning through [`AgentTable::split_mut`]
//!   shards and utility accumulation through
//!   [`AccumulatorTable::split_mut`] shards must equal the sequential
//!   whole-table updates bitwise, for arbitrary shard bounds.
//! * **Active sets** — after every step of a churned, attacked simulation
//!   (departures, re-entries, whitewashes, scheduled adversary rejoins),
//!   the incrementally maintained [`ActiveSets`] must equal a
//!   from-scratch recomputation against the peer registry.

use collabsim_workspace::collabsim::adversary::AdversarySpec;
use collabsim_workspace::collabsim::config::PhaseConfig;
use collabsim_workspace::collabsim::{
    AccumulatorTable, ActiveSets, AgentState, AgentTable, BehaviorMix, BehaviorType, CollabAgent,
    Simulation, SimulationConfig,
};
use collabsim_workspace::netsim::churn::ChurnModel;
use collabsim_workspace::rl::qlearning::QLearningParams;
use collabsim_workspace::rl::space::StateSpace;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const STATES: usize = 10;
const ACTIONS: usize = 27;

/// Draws a behaviour assignment with all three types represented when the
/// population allows it.
fn draw_behaviors(population: usize, rng: &mut StdRng) -> Vec<BehaviorType> {
    (0..population)
        .map(|p| match (p + rng.gen_range(0..3usize)) % 3 {
            0 => BehaviorType::Rational,
            1 => BehaviorType::Altruistic,
            _ => BehaviorType::Irrational,
        })
        .collect()
}

/// Asserts the table reproduces the reference agents bitwise: learner
/// flags, update counts, every Q-cell, and the greedy action per state.
fn assert_table_matches(table: &AgentTable, reference: &[CollabAgent]) {
    for (p, agent) in reference.iter().enumerate() {
        assert_eq!(table.is_learning(p), agent.is_learning(), "peer {p} flag");
        let updates = agent.learner().map_or(0, |l| l.updates());
        assert_eq!(table.updates_of(p), updates, "peer {p} update count");
        if let Some(learner) = agent.learner() {
            for s in 0..STATES {
                let row = table.q_row(p, s);
                assert_eq!(row.len(), ACTIONS);
                for (a, value) in row.iter().enumerate() {
                    assert_eq!(
                        value.to_bits(),
                        learner.table().get(s, a).to_bits(),
                        "peer {p} q[{s}][{a}] diverged"
                    );
                }
                assert_eq!(
                    table.greedy_action(p, s),
                    agent
                        .greedy_action(AgentState { bucket: s })
                        .map(|a| a.to_index()),
                    "peer {p} greedy action in state {s}"
                );
            }
        } else {
            assert!(table.q_block(p).is_none(), "fixed peer {p} owns no Q block");
            assert_eq!(table.greedy_action(p, 0), None);
        }
    }
}

/// Random ascending shard bounds `[0, …, population]`.
fn draw_bounds(population: usize, rng: &mut StdRng) -> Vec<usize> {
    let mut bounds = vec![0, population];
    for _ in 0..rng.gen_range(0..4usize) {
        bounds.push(rng.gen_range(0..population + 1));
    }
    bounds.sort_unstable();
    bounds.dedup();
    if bounds.len() < 2 {
        bounds.push(population);
    }
    bounds
}

proptest! {
    /// The SoA agent table replayed against per-peer [`CollabAgent`]s over
    /// a random trace of choices, rewards, offline gaps and forced skips
    /// stays bitwise identical after every step.
    #[test]
    fn agent_table_matches_per_peer_agents_bitwise(
        population in 3usize..14,
        steps in 1usize..40,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let behaviors = draw_behaviors(population, &mut rng);
        let states = StateSpace::new(STATES);
        let params = QLearningParams::default();
        let mut table = AgentTable::new(&behaviors, states, params);
        let mut reference: Vec<CollabAgent> = behaviors
            .iter()
            .map(|&b| CollabAgent::new(b, states, params))
            .collect();
        let mut online = vec![true; population];

        for step in 0..steps {
            // High-temperature exploration first, then greedy-ish play —
            // both Boltzmann regimes the engine uses.
            let temperature = if step % 2 == 0 { f64::MAX } else { 1.0 };
            for p in 0..population {
                // Churn: peers drop out and re-enter mid-trace.
                if rng.gen_bool(0.1) {
                    online[p] = !online[p];
                }
                if !online[p] {
                    continue;
                }
                // Adversary-forced peers skip choose/record/learn entirely.
                if rng.gen_bool(0.1) {
                    continue;
                }
                let bucket = rng.gen_range(0..STATES);
                let action = reference[p].choose(AgentState { bucket }, temperature, &mut rng);
                table.record_choice(p, bucket, action.to_index());
                prop_assert_eq!(table.last_state_bucket(p), Some(bucket));
                prop_assert_eq!(table.last_action_index(p), Some(action.to_index()));
                // Most choices see their delayed Q-update; some steps end
                // without one (e.g. the peer departs before utility).
                if rng.gen_bool(0.85) {
                    let reward = rng.gen_range(-1.0..1.5);
                    let next = rng.gen_range(0..STATES);
                    reference[p].learn(reward, AgentState { bucket: next });
                    table.learn(p, reward, next);
                }
            }
            assert_table_matches(&table, &reference);
        }
    }

    /// Learning through disjoint [`AgentTable::split_mut`] shards equals
    /// sequential whole-table learning bitwise, for arbitrary bounds.
    #[test]
    fn sharded_learning_matches_sequential_learning(
        population in 2usize..24,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let behaviors = draw_behaviors(population, &mut rng);
        let states = StateSpace::new(STATES);
        let params = QLearningParams::default();
        let mut sequential = AgentTable::new(&behaviors, states, params);
        for p in 0..population {
            sequential.record_choice(p, rng.gen_range(0..STATES), rng.gen_range(0..ACTIONS));
        }
        let mut sharded = sequential.clone();
        let rewards: Vec<(f64, usize)> = (0..population)
            .map(|_| (rng.gen_range(-1.0..1.5), rng.gen_range(0..STATES)))
            .collect();

        for (p, &(reward, next)) in rewards.iter().enumerate() {
            sequential.learn(p, reward, next);
        }
        let bounds = draw_bounds(population, &mut rng);
        for mut shard in sharded.split_mut(&bounds) {
            for p in shard.range() {
                let (reward, next) = rewards[p];
                shard.learn(p, reward, next);
            }
        }

        prop_assert_eq!(sequential.total_updates(), sharded.total_updates());
        for p in 0..population {
            prop_assert_eq!(sequential.updates_of(p), sharded.updates_of(p), "peer {}", p);
            match (sequential.q_block(p), sharded.q_block(p)) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
                        prop_assert_eq!(x.to_bits(), y.to_bits(), "peer {} cell {}", p, i);
                    }
                }
                _ => prop_assert!(false, "learner flag diverged for peer {}", p),
            }
        }
    }

    /// Accumulating through disjoint [`AccumulatorTable::split_mut`] shards
    /// equals sequential whole-table accumulation bitwise.
    #[test]
    fn sharded_accumulation_matches_sequential_accumulation(
        population in 1usize..32,
        events in 0usize..200,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let trace: Vec<(usize, usize, f64)> = (0..events)
            .map(|_| (rng.gen_range(0..population), rng.gen_range(0..8usize), rng.gen_range(0.0..2.0)))
            .collect();

        let mut sequential = AccumulatorTable::new(population);
        for &(p, field, amount) in &trace {
            match field {
                0 => sequential.shared_bandwidth_sum[p] += amount,
                1 => sequential.shared_articles_sum[p] += amount,
                2 => sequential.downloaded_sum[p] += amount,
                3 => sequential.utility_sum[p] += amount,
                4 => sequential.constructive_edits[p] += 1,
                5 => sequential.destructive_edits[p] += 1,
                6 => sequential.votes[p] += 1,
                _ => sequential.steps[p] += 1,
            }
        }

        let mut sharded = AccumulatorTable::new(population);
        let bounds = draw_bounds(population, &mut rng);
        {
            let mut shards = sharded.split_mut(&bounds);
            for &(p, field, amount) in &trace {
                let shard = shards
                    .iter_mut()
                    .find(|s| p >= s.start && p < s.start + s.steps.len())
                    .expect("bounds cover the population");
                let i = p - shard.start;
                match field {
                    0 => shard.shared_bandwidth_sum[i] += amount,
                    1 => shard.shared_articles_sum[i] += amount,
                    2 => shard.downloaded_sum[i] += amount,
                    3 => shard.utility_sum[i] += amount,
                    4 => shard.constructive_edits[i] += 1,
                    5 => shard.destructive_edits[i] += 1,
                    6 => shard.votes[i] += 1,
                    _ => shard.steps[i] += 1,
                }
            }
        }

        for p in 0..population {
            let a = sequential.peer(p);
            let b = sharded.peer(p);
            prop_assert_eq!(a.shared_bandwidth_sum.to_bits(), b.shared_bandwidth_sum.to_bits());
            prop_assert_eq!(a.shared_articles_sum.to_bits(), b.shared_articles_sum.to_bits());
            prop_assert_eq!(a.downloaded_sum.to_bits(), b.downloaded_sum.to_bits());
            prop_assert_eq!(a.utility_sum.to_bits(), b.utility_sum.to_bits());
            prop_assert_eq!(a.constructive_edits, b.constructive_edits);
            prop_assert_eq!(a.destructive_edits, b.destructive_edits);
            prop_assert_eq!(a.votes, b.votes);
            prop_assert_eq!(a.steps, b.steps);
        }
    }

    /// The incrementally maintained active sets equal a from-scratch
    /// recomputation after **every** step of a run whose churn phase
    /// departs, re-enters and whitewashes peers and whose timed
    /// whitewashing adversary departs and rejoins on its own schedule.
    #[test]
    fn active_sets_match_recomputation_under_churn_and_attack(
        seed in 0u64..1_000_000,
    ) {
        let config = SimulationConfig {
            population: 32,
            initial_articles: 16,
            phases: PhaseConfig {
                training_steps: 40,
                evaluation_steps: 20,
                ..Default::default()
            },
            ..Default::default()
        }
        .with_mix(BehaviorMix::new(0.4, 0.3, 0.3))
        .with_churn(ChurnModel {
            join_probability: 0.15,
            leave_probability: 0.08,
            whitewash_probability: 0.04,
        })
        .with_adversary(AdversarySpec::new("adaptive-whitewash", 3).with_parameter(3.0))
        .with_seed(seed);

        let mut sim = Simulation::new(config);
        let world = sim.world();
        prop_assert!(world.active.matches(&world.peers, &world.behaviors));
        for step in 0..60u64 {
            let temperature = if step < 40 { f64::MAX } else { 1.0 };
            sim.step(temperature);
            let world = sim.world();
            prop_assert!(
                world.active.matches(&world.peers, &world.behaviors),
                "active sets drifted from the registry at step {}",
                step
            );
            prop_assert_eq!(
                world.active.iter_online().count(),
                world.peers.online().count(),
                "online cardinality drifted at step {}",
                step
            );
        }
    }
}

/// The recompute oracle itself: built from behaviours alone it marks every
/// peer online and exactly the rational peers as learners.
#[test]
fn recompute_oracle_matches_fresh_construction() {
    let mut rng = StdRng::seed_from_u64(0xB0C);
    let behaviors = draw_behaviors(17, &mut rng);
    let peers = collabsim_workspace::netsim::peer::PeerRegistry::with_population(behaviors.len());
    assert_eq!(
        ActiveSets::recompute(&peers, &behaviors),
        ActiveSets::new(&behaviors)
    );
}
