//! Integration tests exercising the substrates together: DHT placement with
//! the article store, trust propagation feeding the service differentiation,
//! and the tit-for-tat baseline against the reputation scheme on the same
//! request stream.

use collabsim_workspace::netsim::article::ArticleRegistry;
use collabsim_workspace::netsim::bandwidth::{
    AllocationPolicy, BandwidthAllocator, DownloadRequest,
};
use collabsim_workspace::netsim::dht::{Dht, DhtKey};
use collabsim_workspace::netsim::overlay::{Overlay, Topology};
use collabsim_workspace::netsim::peer::PeerId;
use collabsim_workspace::netsim::storage::ArticleStore;
use collabsim_workspace::reputation::attack::collusion_clique;
use collabsim_workspace::reputation::contribution::SharingAction;
use collabsim_workspace::reputation::ledger::ReputationLedger;
use collabsim_workspace::reputation::propagation::eigentrust::EigenTrust;
use collabsim_workspace::reputation::propagation::maxflow::MaxFlowTrust;
use collabsim_workspace::reputation::service::ServiceDifferentiation;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn dht_placement_keeps_articles_available_after_churn() {
    let population = 32;
    let mut dht = Dht::new(4);
    let mut store = ArticleStore::new();
    let mut articles = ArticleRegistry::new();
    for p in 0..population {
        dht.join(PeerId(p));
    }
    let mut ids = Vec::new();
    for i in 0..20 {
        let creator = PeerId(i % population);
        let id = articles.create_article(creator, 0);
        store.add_replica(creator, id);
        for holder in dht.store(DhtKey::for_article(id.0)) {
            store.add_replica(holder, id);
            store.set_offered_count(holder, 100);
        }
        store.set_offered_count(creator, 100);
        ids.push(id);
    }
    assert_eq!(store.availability(&ids), 1.0);

    // A quarter of the peers leave; the replication factor of 4+creator keeps
    // every article available.
    for p in 0..population / 4 {
        dht.leave(PeerId(p));
        store.drop_peer(PeerId(p));
    }
    let available = store.availability(&ids);
    assert!(
        available >= 0.9,
        "availability after churn should stay high, got {available}"
    );

    // Lookups from surviving peers still find holders for available articles.
    let surviving = PeerId(population - 1);
    let found = ids
        .iter()
        .filter(|id| {
            !dht.lookup(surviving, DhtKey::for_article(id.0))
                .holders
                .is_empty()
        })
        .count();
    assert!(found * 10 >= ids.len() * 9);
}

#[test]
fn overlay_topologies_connect_the_population() {
    let mut rng = StdRng::seed_from_u64(17);
    for topology in [
        Topology::FullMesh,
        Topology::Random { p: 0.2 },
        Topology::SmallWorld { k: 3, beta: 0.1 },
    ] {
        let overlay = Overlay::build(64, topology, &mut rng);
        assert!(
            overlay.is_connected() || matches!(topology, Topology::Random { .. }),
            "{topology:?} should normally be connected"
        );
        assert!(overlay.mean_degree() > 1.0);
    }
}

#[test]
fn propagated_trust_feeds_service_differentiation_against_colluders() {
    // Build a collusion scenario, compute trust with MaxFlow from an honest
    // observer, and use the result as sharing reputations for the bandwidth
    // split: colluders should receive less bandwidth than honest peers even
    // though their mutual local trust is enormous.
    let mut rng = StdRng::seed_from_u64(23);
    let (graph, scenario) = collusion_clique(16, 4, 500.0, 0.6, &mut rng);
    let observer = scenario.honest()[0];
    let trust = MaxFlowTrust::new().reputation_from(&graph, observer);

    let service = ServiceDifferentiation::paper_defaults();
    let peers: Vec<usize> = (0..16).filter(|&p| p != observer).collect();
    let reputations: Vec<f64> = peers.iter().map(|&p| trust.values[p]).collect();
    let shares = service.bandwidth_shares(&reputations);
    let share_of = |peer: usize| shares[peers.iter().position(|&p| p == peer).unwrap()];

    let mean_honest: f64 = scenario
        .honest()
        .iter()
        .filter(|&&p| p != observer)
        .map(|&p| share_of(p))
        .sum::<f64>()
        / (scenario.honest().len() - 1) as f64;
    let mean_attacker: f64 = scenario.attackers.iter().map(|&p| share_of(p)).sum::<f64>()
        / scenario.attackers.len() as f64;
    assert!(
        mean_honest > mean_attacker,
        "honest peers should receive more bandwidth than colluders: {mean_honest} vs {mean_attacker}"
    );

    // EigenTrust with damping towards honest pre-trusted peers agrees on the
    // ranking direction.
    let damped =
        EigenTrust::new(0.3, scenario.honest().into_iter().take(3).collect()).compute(&graph);
    let honest_mass: f64 = scenario.honest().iter().map(|&p| damped.values[p]).sum();
    let attacker_mass: f64 = scenario.attackers.iter().map(|&p| damped.values[p]).sum();
    assert!(honest_mass > attacker_mass);
}

#[test]
fn reputation_scheme_beats_tit_for_tat_for_non_direct_relations() {
    // The paper's core argument: a newcomer-to-the-source contributor has no
    // direct upload history with that source, so TFT treats it like a
    // free-rider, while the reputation scheme recognises its contributions
    // to *other* peers.
    let mut ledger = ReputationLedger::with_paper_defaults(3);
    // Peer 0 has contributed heavily to the network at large.
    ledger.record_sharing(
        0,
        &SharingAction {
            shared_articles: 20.0,
            shared_bandwidth: 1.0,
        },
    );
    // Peer 1 is a pure free-rider. Both now download from source peer 2 for
    // the first time (no direct history with it).
    let requests = [
        DownloadRequest {
            downloader: PeerId(0),
            sharing_reputation: ledger.sharing_reputation(0),
            download_capacity: 1.0,
            uploaded_to_source: 0.0,
        },
        DownloadRequest {
            downloader: PeerId(1),
            sharing_reputation: ledger.sharing_reputation(1),
            download_capacity: 1.0,
            uploaded_to_source: 0.0,
        },
    ];
    let reputation_split =
        BandwidthAllocator::new(AllocationPolicy::WeightedByReputation).allocate(1.0, &requests);
    let tft_split = BandwidthAllocator::new(AllocationPolicy::TitForTat).allocate(1.0, &requests);

    // The reputation scheme rewards the contributor...
    assert!(reputation_split[0].bandwidth > 0.8);
    assert!(reputation_split[1].bandwidth < 0.2);
    // ...while TFT cannot distinguish them (no direct relation → equal split).
    assert!((tft_split[0].bandwidth - tft_split[1].bandwidth).abs() < 1e-9);
}
