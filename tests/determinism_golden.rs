//! Determinism and golden-report regression tests.
//!
//! Two guarantees are pinned here:
//!
//! 1. **Seed determinism** — two simulations built from the same
//!    [`SimulationConfig`] produce bit-identical [`SimulationReport`]s, and
//!    parallel grid execution reproduces sequential execution exactly.
//! 2. **Golden report** — one fixed configuration's report is pinned to the
//!    exact values produced by the pre-pipeline monolithic engine (recorded
//!    at the commit that first made the workspace build), so engine
//!    refactors that accidentally reorder RNG draws or phase effects fail
//!    loudly instead of silently shifting every figure.

use collabsim_workspace::collabsim::experiment::{ScenarioGrid, ScenarioRunner};
use collabsim_workspace::collabsim::spec::ScenarioSpec;
use collabsim_workspace::collabsim::{
    BehaviorMix, BehaviorType, IncentiveScheme, PhaseConfig, Simulation, SimulationConfig,
};

/// The pinned configuration behind the golden values below. Do not change
/// it — add a new pin instead if another scenario needs coverage.
fn golden_config() -> SimulationConfig {
    SimulationConfig {
        population: 20,
        initial_articles: 10,
        phases: PhaseConfig {
            training_steps: 120,
            evaluation_steps: 80,
            ..Default::default()
        },
        ..Default::default()
    }
    .with_mix(BehaviorMix::new(0.5, 0.25, 0.25))
    .with_incentive(IncentiveScheme::ReputationBased)
    .with_seed(0xC0FFEE)
}

#[test]
fn same_seed_produces_identical_reports() {
    let a = Simulation::new(golden_config()).run();
    let b = Simulation::new(golden_config()).run();
    assert_eq!(a, b);
}

#[test]
fn golden_report_matches_pre_refactor_engine() {
    let report = Simulation::new(golden_config()).run();
    let debug = format!("{report:?}");
    assert_eq!(debug, GOLDEN_REPORT_DEBUG, "golden report drifted");
}

#[test]
fn parallel_grid_matches_sequential_execution() {
    let base = golden_config();
    let grid = ScenarioGrid::new(base)
        .with_mixes([
            ("half-rational", 50.0, BehaviorMix::new(0.5, 0.25, 0.25)),
            ("all-rational", 100.0, BehaviorMix::all_rational()),
        ])
        .with_schemes([IncentiveScheme::ReputationBased, IncentiveScheme::None])
        .with_seeds([7, 8]);
    assert_eq!(grid.len(), 8);
    let parallel = ScenarioRunner::default().run_grid(&grid);
    let sequential = ScenarioRunner::sequential().run_grid(&grid);
    assert_eq!(parallel.len(), 8);
    assert_eq!(parallel, sequential);
    // Spot-check the cell labelling convention while we are here.
    assert_eq!(parallel[0].label, "half-rational/reputation/seed=7");
    assert_eq!(parallel[7].label, "all-rational/none/seed=8");
}

#[test]
fn golden_report_survives_the_scenario_spec_api() {
    // The pinned configuration expressed as a ScenarioSpec — including a
    // full text-serialization round trip — must reproduce the golden
    // report bit for bit: the declarative API is a new front door, not a
    // new engine.
    let spec = ScenarioSpec::from_config(golden_config()).expect("golden config is valid");
    let report = Simulation::from_spec(&spec)
        .expect("standard phases resolve")
        .run();
    assert_eq!(
        format!("{report:?}"),
        GOLDEN_REPORT_DEBUG,
        "spec path drifted"
    );

    let reparsed = ScenarioSpec::parse(&spec.to_text()).expect("rendered spec parses");
    let report = Simulation::from_spec(&reparsed)
        .expect("standard phases resolve")
        .run();
    assert_eq!(
        format!("{report:?}"),
        GOLDEN_REPORT_DEBUG,
        "text round trip drifted"
    );
}

#[test]
fn cli_golden_spec_is_the_golden_config() {
    // `scenarios/golden.spec` is generated from this constructor, so
    // pinning the constructor to `golden_config()` pins the checked-in
    // file (byte-equality is enforced by tests/scenario_files.rs) — and
    // therefore `collabsim run scenarios/golden.spec --print-report`
    // reproduces GOLDEN_REPORT_DEBUG.
    let spec = collabsim_workspace::cli::scenarios::golden_spec();
    assert_eq!(spec.config(), &golden_config(), "golden spec drifted");
    assert_eq!(spec.label(), "golden");
}

#[test]
fn golden_report_is_shard_and_thread_invariant() {
    // The pinned golden values must be reproduced regardless of how the
    // ledger is sharded and how many intra-step workers apply the
    // contribution deltas: sharding is a performance knob, never a
    // semantic one.
    for (shards, threads) in [(1, 1), (4, 2), (8, 8)] {
        let config = golden_config()
            .with_ledger_shards(shards)
            .with_intra_step_threads(threads);
        let report = Simulation::new(config).run();
        let debug = format!("{report:?}");
        assert_eq!(
            debug, GOLDEN_REPORT_DEBUG,
            "report drifted with {shards} shards / {threads} threads"
        );
    }
}

#[test]
fn sharded_parallel_paper_configuration_matches_sequential() {
    // The paper configuration (100 peers, reduced phase lengths so the
    // test stays fast) run with a multi-shard ledger and multi-threaded
    // collect/apply stages must be bit-identical to the single-shard,
    // single-threaded run.
    let paper = SimulationConfig {
        phases: PhaseConfig {
            training_steps: 400,
            evaluation_steps: 200,
            ..Default::default()
        },
        ..Default::default()
    }
    .with_mix(BehaviorMix::new(0.6, 0.2, 0.2))
    .with_seed(0xFACE);
    assert_eq!(paper.population, 100, "the paper's population");
    let sequential = Simulation::new(
        paper
            .clone()
            .with_ledger_shards(1)
            .with_intra_step_threads(1),
    )
    .run();
    let parallel = Simulation::new(paper.with_ledger_shards(16).with_intra_step_threads(4)).run();
    assert_eq!(sequential, parallel);
}

#[test]
fn behavior_breakdown_is_deterministic_too() {
    let a = Simulation::new(golden_config()).run();
    let b = Simulation::new(golden_config()).run();
    for behavior in BehaviorType::ALL {
        assert_eq!(a.breakdown(behavior), b.breakdown(behavior));
    }
}

/// `format!("{report:?}")` of the golden run, recorded from the monolithic
/// pre-pipeline engine. Bitwise-exact: every f64 must match.
const GOLDEN_REPORT_DEBUG: &str = "SimulationReport { shared_bandwidth: 0.4515625, shared_articles: 0.460625, by_behavior: {\"altruistic\": BehaviorBreakdown { peers: 5, shared_bandwidth: 1.0, shared_articles: 1.0, downloaded: 0.43559719294820637, final_sharing_reputation: 0.8647787093973539, final_editing_reputation: 0.05000000000000001, constructive_edits: 84, destructive_edits: 0, votes: 4, mean_utility: 3.361596929482065 }, \"irrational\": BehaviorBreakdown { peers: 5, shared_bandwidth: 0.0, shared_articles: 0.0, downloaded: 0.12242082835628557, final_sharing_reputation: 0.05000000000000001, final_editing_reputation: 0.8099999829293056, constructive_edits: 0, destructive_edits: 0, votes: 256, mean_utility: 1.4904582835628555 }, \"rational\": BehaviorBreakdown { peers: 10, shared_bandwidth: 0.403125, shared_articles: 0.42125, downloaded: 0.32474098934775397, final_sharing_reputation: 0.5909831259707194, final_editing_reputation: 0.7950949747456495, constructive_edits: 36, destructive_edits: 89, votes: 317, mean_utility: 3.177097393477539 }}, edit_outcomes: EditOutcomeCounts { accepted_constructive: 2, accepted_destructive: 84, declined_constructive: 118, declined_destructive: 5, pending: 0 }, mean_article_quality: 0.5215784136654522, completed_downloads: 359, evaluation_steps: 80, seed: 12648430 }";
