//! Pins the checked-in `scenarios/` tree to the canonical constructors in
//! `collabsim_cli::scenarios`.
//!
//! The tree is generated (`collabsim scaffold --dir scenarios`); these
//! tests make drift impossible: every constructor-produced file must exist
//! byte-for-byte, no stray `.spec` file may exist that no constructor
//! produces, and every checked-in file must parse and round-trip through
//! the text format.

use collabsim_workspace::cli::scenarios::scenario_files;
use collabsim_workspace::collabsim::spec::ScenarioSpec;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

fn scenarios_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("scenarios")
}

fn walk_specs(dir: &Path, out: &mut Vec<PathBuf>) {
    let entries = std::fs::read_dir(dir).expect("scenarios tree is readable");
    for entry in entries {
        let path = entry.expect("readable dir entry").path();
        if path.is_dir() {
            walk_specs(&path, out);
        } else if path.extension().is_some_and(|e| e == "spec") {
            out.push(path);
        }
    }
}

#[test]
fn checked_in_specs_match_the_constructors_byte_for_byte() {
    let root = scenarios_root();
    for (rel, spec) in scenario_files() {
        let path = root.join(&rel);
        let on_disk = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "{} is missing ({e}); regenerate with `collabsim scaffold --dir scenarios`",
                path.display()
            )
        });
        assert_eq!(
            on_disk,
            spec.to_text(),
            "{} drifted from its constructor; regenerate with \
             `collabsim scaffold --dir scenarios`",
            rel.display()
        );
    }
}

#[test]
fn no_stray_spec_files_exist() {
    let root = scenarios_root();
    let expected: BTreeSet<PathBuf> = scenario_files().into_iter().map(|(rel, _)| rel).collect();
    let mut on_disk = Vec::new();
    walk_specs(&root, &mut on_disk);
    assert_eq!(on_disk.len(), expected.len(), "spec file count");
    for path in on_disk {
        let rel = path.strip_prefix(&root).expect("under scenarios/");
        assert!(
            expected.contains(rel),
            "{} has no constructor in collabsim_cli::scenarios",
            rel.display()
        );
    }
}

#[test]
fn every_checked_in_spec_parses_and_round_trips() {
    let root = scenarios_root();
    let mut on_disk = Vec::new();
    walk_specs(&root, &mut on_disk);
    assert!(!on_disk.is_empty(), "scenarios/ holds spec files");
    for path in on_disk {
        let text = std::fs::read_to_string(&path).expect("readable spec");
        let spec = ScenarioSpec::parse(&text)
            .unwrap_or_else(|e| panic!("{} does not parse: {e}", path.display()));
        assert_eq!(spec.to_text(), text, "{} round trip", path.display());
    }
}
