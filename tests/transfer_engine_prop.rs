//! Property tests of the batched transfer engine: the parallel
//! [`GrantBatch`] path is bit-identical to a retained sequential reference
//! allocator for arbitrary populations, offers and request sets, and the
//! [`TransferManager`] free list recycles slots without losing any
//! aggregate statistics.

use collabsim_workspace::collabsim::pipeline::{allocate_grants, GrantBatch, RequestTable};
use collabsim_workspace::netsim::article::ArticleId;
use collabsim_workspace::netsim::bandwidth::{
    Allocation, AllocationPolicy, BandwidthAllocator, DownloadRequest,
};
use collabsim_workspace::netsim::peer::PeerId;
use collabsim_workspace::netsim::transfer::{TransferManager, TransferStatus};
use proptest::prelude::*;

fn policy_from(kind: u32) -> AllocationPolicy {
    match kind % 3 {
        0 => AllocationPolicy::EqualSplit,
        1 => AllocationPolicy::WeightedByReputation,
        _ => AllocationPolicy::TitForTat,
    }
}

/// The retained sequential reference path: one
/// [`BandwidthAllocator::allocate`] call per active source, in ascending
/// source order — the allocation protocol of the pre-batched engine.
fn reference_grants(
    allocator: &BandwidthAllocator,
    table: &RequestTable,
    offered: &[f64],
) -> Vec<Allocation> {
    let mut all = Vec::new();
    for (k, &offer) in offered.iter().enumerate() {
        let (_, requests, _) = table.bucket(k);
        all.extend(allocator.allocate(offer, requests));
    }
    all
}

proptest! {
    /// Random populations, offers and request sets: fanning the grant
    /// stage out over any worker count produces bitwise the same
    /// allocations, in the same (source-ascending) order, as the
    /// sequential reference allocator.
    #[test]
    fn parallel_grant_batches_match_sequential_reference(
        population in 2usize..60,
        threads in 1usize..7,
        policy_kind in 0u32..3,
        ops in proptest::collection::vec(
            (0usize..60, 0usize..60, 0.0f64..1.0, 0.0f64..2.0, 0.0f64..3.0),
            0..80,
        ),
        offers in proptest::collection::vec(0.0f64..2.0, 60..61),
    ) {
        let allocator = BandwidthAllocator::new(policy_from(policy_kind));
        let mut table = RequestTable::default();
        table.begin_step(population);
        for (i, &(downloader_raw, source_raw, reputation, capacity, uploaded)) in
            ops.iter().enumerate()
        {
            let source = PeerId((source_raw % population) as u32);
            table.push(
                source,
                DownloadRequest {
                    downloader: PeerId((downloader_raw % population) as u32),
                    sharing_reputation: reputation,
                    download_capacity: capacity,
                    uploaded_to_source: uploaded,
                },
                i as u64,
            );
        }
        table.build();
        let offered: Vec<f64> = table
            .active_sources()
            .iter()
            .map(|&s| offers[s as usize])
            .collect();

        let reference = reference_grants(&allocator, &table, &offered);
        let mut batches = Vec::new();
        allocate_grants(&allocator, &table, &offered, &mut batches, threads);
        let flattened: Vec<Allocation> = batches
            .iter()
            .flat_map(GrantBatch::allocations)
            .copied()
            .collect();
        prop_assert_eq!(flattened.len(), reference.len());
        prop_assert_eq!(flattened.len(), table.len());
        for (got, want) in flattened.iter().zip(reference.iter()) {
            prop_assert_eq!(got.downloader, want.downloader);
            prop_assert_eq!(got.share.to_bits(), want.share.to_bits());
            prop_assert_eq!(got.bandwidth.to_bits(), want.bandwidth.to_bits());
        }
    }

    /// Arbitrary start/grant/finish/release interleavings: the arena never
    /// outgrows the peak number of live transfers, released slots come
    /// back fresh, and the aggregate statistics (completion counts and
    /// durations, per-peer byte totals) are exactly those of an engine
    /// that never recycled.
    #[test]
    fn free_list_recycling_preserves_aggregates(
        ops in proptest::collection::vec((0u32..8, 0u32..8, 0.0f64..1.5, 0u32..3), 1..60),
    ) {
        let mut recycled = TransferManager::new();
        let mut retained = TransferManager::new();
        // Shadow bookkeeping: (recycled id, retained id) of live transfers.
        let mut live: Vec<(u64, u64)> = Vec::new();
        let mut peak_live = 0usize;
        let mut now = 0u64;
        for &(downloader, source, grant, action) in &ops {
            now += 1;
            match action {
                // Start a new transfer on both managers.
                0 => {
                    let article = ArticleId(downloader + source);
                    let a = recycled.start(PeerId(downloader), PeerId(source), article, now);
                    let b = retained.start(PeerId(downloader), PeerId(source), article, now);
                    live.push((a, b));
                    peak_live = peak_live.max(live.len());
                }
                // Grant to the oldest live transfer; release on completion.
                1 => {
                    if let Some(&(a, b)) = live.first() {
                        let sa = recycled.apply_grant(a, grant, now);
                        let sb = retained.apply_grant(b, grant, now);
                        prop_assert_eq!(sa, sb);
                        if sa == TransferStatus::Completed {
                            recycled.release(a);
                            live.remove(0);
                        }
                    }
                }
                // Cancel and release the newest live transfer.
                _ => {
                    if let Some((a, b)) = live.pop() {
                        recycled.cancel(a, now);
                        retained.cancel(b, now);
                        recycled.release(a);
                    }
                }
            }
        }
        // The recycling arena is bounded by peak concurrency; the retained
        // arena grew with every start.
        prop_assert!(recycled.slot_count() <= peak_live.max(1));
        prop_assert_eq!(recycled.live_count(), live.len());
        // Aggregates agree exactly with the never-recycling manager.
        prop_assert_eq!(recycled.completed_count(), retained.completed_count());
        prop_assert_eq!(
            recycled.mean_completion_steps().to_bits(),
            retained.mean_completion_steps().to_bits()
        );
        for p in 0..8u32 {
            let peer = PeerId(p);
            prop_assert!(
                (recycled.total_received_by(peer) - retained.total_received_by(peer)).abs()
                    < 1e-9
            );
            prop_assert!(
                (recycled.total_served_by(peer) - retained.total_served_by(peer)).abs() < 1e-9
            );
        }
    }
}
