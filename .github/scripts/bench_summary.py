#!/usr/bin/env python3
"""Merge the perf job's BENCH_*.json reports into one markdown table.

Usage: bench_summary.py BENCH_scale.json BENCH_paper.json ... >> "$GITHUB_STEP_SUMMARY"

Each report is the self-describing JSON a collabsim-bench binary writes
(`"bench"` name plus per-cell/tier/grid objects). The script is schema-
tolerant: it walks every JSON object, keeps the ones that carry a
steps_per_sec-like throughput number, and renders one row per entry —
a missing or unreadable file becomes a visible row, never a crash, so the
step summary still renders when a bench is skipped.
"""

import json
import sys


def rows_from_report(name, doc):
    """Yield (bench, entry, steps/sec, extra) rows from one report."""
    bench = doc.get("bench", name)

    def walk(node, label):
        if isinstance(node, dict):
            sps = node.get("steps_per_sec") or node.get("aggregate_steps_per_sec")
            if sps is not None:
                entry = node.get("label") or label or "-"
                extras = []
                for key in ("peers", "cells", "total_steps"):
                    if key in node:
                        extras.append(f"{key}={node[key]}")
                if "peak_rss_mb" in node:
                    extras.append(f"rss={node['peak_rss_mb']:.0f}MB")
                yield (bench, str(entry), float(sps), " ".join(extras))
            for key, value in node.items():
                if isinstance(value, (dict, list)) and key != "phases":
                    yield from walk(value, key)
        elif isinstance(node, list):
            for item in node:
                yield from walk(item, label)

    yield from walk(doc, None)
    total = doc.get("total_steps_per_sec")
    if total is not None:
        extra = ""
        warm = doc.get("warm_start")
        if isinstance(warm, dict) and "wall_seconds_saved" in warm:
            extra = (
                f"warm-start saved {warm['wall_seconds_saved']:.2f}s "
                f"across {warm.get('cells', '?')} forked cells"
            )
        yield (bench, "aggregate", float(total), extra)


def arms_table(doc):
    """Render the arms_race per-defence robustness table, if present."""
    defences = doc.get("defences")
    if doc.get("bench") != "arms_race" or not isinstance(defences, list):
        return
    print()
    print("### Arms race: trained vs scripted attackers, per defence")
    print()
    print(
        "| defence | trained damage | scripted damage | trained retained "
        "| scripted retained | q-updates | winner |"
    )
    print("| --- | ---: | ---: | ---: | ---: | ---: | --- |")
    for arm in defences:
        trained = arm.get("trained", {})
        scripted = arm.get("scripted", {})
        winner = "trained" if arm.get("trained_beats_scripted") else "scripted"
        print(
            f"| {arm.get('defence', '-')} "
            f"| {trained.get('damage', 0):,.2f} "
            f"| {scripted.get('damage', 0):,.2f} "
            f"| {trained.get('mean_reputation_retained', 0):.4f} "
            f"| {scripted.get('mean_reputation_retained', 0):.4f} "
            f"| {arm.get('q_updates', 0)} "
            f"| {winner} |"
        )
    wins = doc.get("trained_wins")
    if wins is not None:
        print()
        print(
            f"Trained attacker out-damages the scripted whitewasher on "
            f"**{wins}/{len(defences)}** defences."
        )


def main(paths):
    print("## Bench results")
    print()
    print("| bench | entry | steps/sec | detail |")
    print("| --- | --- | ---: | --- |")
    docs = []
    for path in paths:
        try:
            with open(path, encoding="utf-8") as handle:
                doc = json.load(handle)
        except FileNotFoundError:
            # An earlier gate failing means later benches never wrote
            # their reports; the summary must still render what exists.
            print(f"| {path} | - | - | missing (bench did not run) |")
            continue
        except (OSError, ValueError) as err:
            print(f"| {path} | - | - | unreadable: {err} |")
            continue
        docs.append(doc)
        emitted = False
        for bench, entry, sps, extra in rows_from_report(path, doc):
            print(f"| {bench} | {entry} | {sps:,.1f} | {extra} |")
            emitted = True
        if not emitted:
            print(f"| {path} | - | - | no throughput entries found |")
    for doc in docs:
        arms_table(doc)


if __name__ == "__main__":
    main(sys.argv[1:])
